#include "pygb/jit/loader.hpp"

#include <dlfcn.h>

#include <fstream>
#include <iterator>

#include "gbtl/detail/pool.hpp"
#include "pygb/faultinj.hpp"
#include "pygb/jit/cache.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace {

/// True when the file's bytes contain the NUL-terminated stamp payload.
/// Verification runs BEFORE dlopen on purpose: an unverified module must
/// never execute its initializers, and glibc resolves dlopen by path name
/// against already-loaded objects, so a bad file has to be rejected
/// without ever being mapped under its path. The trailing NUL makes a
/// shorter key's stamp unable to match inside a longer key's module.
bool file_carries_stamp(const std::string& path, const std::string& stamp) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::string needle = std::string(kStampMarker) + stamp;
  needle.push_back('\0');
  return bytes.find(needle) != std::string::npos;
}

}  // namespace

KernelFn load_kernel(const std::string& so_path, std::string* error,
                     const std::string& expected_stamp) {
  obs::Span span("jit.load");
  span.attr("module", so_path);
  if (faultinj::check(faultinj::site::kCacheVerify)) {
    obs::counter_add(obs::Counter::kFaultsInjected);
    if (error != nullptr) *error = "fault injected at cache_verify";
    return nullptr;
  }
  if (!expected_stamp.empty() &&
      !file_carries_stamp(so_path, expected_stamp)) {
    if (error != nullptr) {
      *error = "module lacks the expected verification stamp (built by a "
               "different compiler/flags/schema, a colliding key, or "
               "corrupt); want '" +
               expected_stamp + "'";
    }
    return nullptr;
  }
  if (faultinj::check(faultinj::site::kDlopen)) {
    obs::counter_add(obs::Counter::kFaultsInjected);
    if (error != nullptr) *error = "fault injected at dlopen";
    return nullptr;
  }
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlopen failed";
    }
    return nullptr;
  }
  void* sym = dlsym(handle, kKernelSymbol);
  if (sym == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlsym failed";
    }
    dlclose(handle);
    return nullptr;
  }
  // Hand the module the host's worker pool so its kernels parallelize on
  // the same persistent threads as in-process code. Missing export (a
  // module cached by an older schema) is fine — the module then runs its
  // parallel regions inline, which is always correct.
  if (void* inject = dlsym(handle, gbtl::detail::kPoolInjectSymbol)) {
    using InjectFn = void (*)(const gbtl::detail::PoolApi*);
    reinterpret_cast<InjectFn>(inject)(gbtl::detail::host_pool_api());
  }
  return reinterpret_cast<KernelFn>(sym);
}

}  // namespace pygb::jit
