#include "pygb/jit/loader.hpp"

#include <dlfcn.h>

#include "pygb/obs/obs.hpp"

namespace pygb::jit {

KernelFn load_kernel(const std::string& so_path, std::string* error) {
  obs::Span span("jit.load");
  span.attr("module", so_path);
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlopen failed";
    }
    return nullptr;
  }
  void* sym = dlsym(handle, kKernelSymbol);
  if (sym == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlsym failed";
    }
    dlclose(handle);
    return nullptr;
  }
  return reinterpret_cast<KernelFn>(sym);
}

}  // namespace pygb::jit
