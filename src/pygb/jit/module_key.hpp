// pygb/jit/module_key.hpp — the operation descriptor assembled by the DSL
// at evaluation time, and its canonical dispatch key.
//
// This is the information PyGB passes to `get_module(kwargs)` in Fig. 9:
// the function name, the operand dtypes, the operator structure, transpose
// flags, and the mask kind. Everything in the key is compile-time-relevant
// for the C++ kernel; runtime-only values (the replace flag, bound
// constants, assign scalars, index arrays) travel in KernelArgs instead so
// that modules are maximally reusable across calls.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/types.hpp"
#include "pygb/dtype.hpp"
#include "pygb/operators.hpp"
#include "pygb/userops.hpp"

namespace pygb::jit {

/// How the output is masked. The mask container itself is always boolean
/// (the DSL coerces mask values, per the paper); complement is part of the
/// compiled kernel's type.
enum class MaskKind : std::uint8_t {
  kNone,
  kMatrix,
  kMatrixComp,
  kVector,
  kVectorComp,
};

const char* to_string(MaskKind mk);

/// Operation names understood by all three backends.
namespace func {
inline constexpr const char* kMxM = "mxm";
inline constexpr const char* kMxV = "mxv";
inline constexpr const char* kVxM = "vxm";
inline constexpr const char* kEWiseAddMM = "ewise_add_mm";
inline constexpr const char* kEWiseAddVV = "ewise_add_vv";
inline constexpr const char* kEWiseMultMM = "ewise_mult_mm";
inline constexpr const char* kEWiseMultVV = "ewise_mult_vv";
inline constexpr const char* kApplyM = "apply_m";
inline constexpr const char* kApplyV = "apply_v";
inline constexpr const char* kReduceMS = "reduce_m_s";
inline constexpr const char* kReduceVS = "reduce_v_s";
inline constexpr const char* kReduceMV = "reduce_m_v";
inline constexpr const char* kAssignMM = "assign_mm";
inline constexpr const char* kAssignMS = "assign_ms";
inline constexpr const char* kAssignVV = "assign_vv";
inline constexpr const char* kAssignVS = "assign_vs";
inline constexpr const char* kExtractMM = "extract_mm";
inline constexpr const char* kExtractVV = "extract_vv";
inline constexpr const char* kTransposeM = "transpose_m";
// Whole-algorithm entry points (Fig. 10 "Python calls a complete C++
// algorithm" series).
inline constexpr const char* kAlgoBfs = "algo_bfs";
inline constexpr const char* kAlgoSssp = "algo_sssp";
inline constexpr const char* kAlgoPagerank = "algo_pagerank";
inline constexpr const char* kAlgoTriangleCount = "algo_tc";
inline constexpr const char* kAlgoConnectedComponents = "algo_cc";
// A recorded multi-statement chain compiled into ONE module (§V's planned
// lazy-evaluation feature, implemented — see pygb/fused.hpp).
inline constexpr const char* kFusedChain = "fused_chain";
}  // namespace func

// ---------------------------------------------------------------------------
// Fused-chain descriptors (§V: "allow a series of operations to be deferred
// until a single binary module containing all the previously deferred
// operations is compiled").
// ---------------------------------------------------------------------------

/// A chain parameter: a container (bound by pointer at run time) or a
/// runtime scalar. Scalars are transported over the double channel but
/// compiled at their declared dtype, so FP32/integer chains don't widen.
struct ChainParam {
  enum class Kind : std::uint8_t { kMatrix, kVector, kScalar };
  Kind kind;
  DType dtype = DType::kFP64;
  std::string name;
};

/// One statement of a chain. Operand fields are parameter indices (-1 =
/// unused). Masks are not supported inside chains (they fuse the unmasked
/// inner loops of algorithms like PageRank's iteration body).
struct ChainStatement {
  std::string func;  ///< one of the func:: operation names
  int target = -1;
  int a = -1;
  int b = -1;
  int scalar = -1;  ///< scalar-parameter index for bound/assign statements
  bool a_transposed = false;
  bool b_transposed = false;
  std::optional<Semiring> semiring;
  std::optional<BinaryOp> binary_op;
  std::optional<UnaryOpName> plain_unary;
  std::optional<BinaryOp> bound_op;  ///< bind-2nd with `scalar` param
  std::optional<Monoid> monoid;
  std::optional<BinaryOp> accum;
};

/// The full chain: compiled as one translation unit; the signature is the
/// dispatch key.
struct FusedChainDesc {
  std::string name;
  std::vector<ChainParam> params;
  std::vector<ChainStatement> statements;

  /// Module-key axis identifying who built the chain: "" for hand-recorded
  /// FusedChain programs, "dag" for planner-fused lazy-DAG chains. Part of
  /// signature() so the two families never collide in the module cache.
  std::string origin;

  std::string signature() const;
};

/// Everything the dispatcher needs to find or build a kernel.
struct OpRequest {
  std::string func;

  DType c = DType::kFP64;        ///< output element type
  std::optional<DType> a;        ///< first input element type
  std::optional<DType> b;        ///< second input element type

  bool a_transposed = false;
  bool b_transposed = false;
  MaskKind mask = MaskKind::kNone;

  /// Kernel-backend axis (docs/BACKENDS.md). Resolved by the dispatcher
  /// (per-op BackendHint > process default) before the key is taken, so a
  /// compiled module is permanently bound to one backend. kScalar keeps the
  /// pre-axis key spelling — existing module caches stay valid.
  gbtl::detail::Backend backend = gbtl::detail::Backend::kScalar;

  std::optional<Semiring> semiring;    ///< mxm/mxv/vxm and whole algorithms
  std::optional<Monoid> monoid;        ///< reduce
  std::optional<BinaryOp> binary_op;   ///< eWiseAdd / eWiseMult
  std::optional<UnaryOp> unary_op;     ///< apply (bound value is runtime)
  std::optional<BinaryOp> accum;       ///< output accumulator

  /// User-defined operators (§VIII): served only by the JIT backend.
  std::optional<UserBinaryOp> user_binary;  ///< replaces binary_op
  std::optional<UserUnaryOp> user_unary;    ///< replaces unary_op

  /// Fused chain description (func == kFusedChain; JIT backend only).
  std::shared_ptr<const FusedChainDesc> chain;

  /// Canonical dispatch key. Two requests with equal keys can share a
  /// compiled module.
  std::string key() const;

  bool has_user_op() const {
    return user_binary.has_value() || user_unary.has_value();
  }
};

/// Fixed-width exact scalar channel used for reduce-to-scalar results.
struct ScalarSlot {
  double f = 0.0;
  std::int64_t i = 0;
  std::uint64_t u = 0;
};

/// The type-erased, standard-layout argument block every kernel receives —
/// stable across the static registry, dlopen'd JIT modules, and the
/// interpreted fallback.
struct KernelArgs {
  void* c = nullptr;        ///< gbtl::Matrix<CT>* or gbtl::Vector<CT>*
  const void* mask = nullptr;  ///< gbtl::Matrix<bool>* / gbtl::Vector<bool>*
  const void* a = nullptr;
  const void* b = nullptr;

  double scalar_f = 0.0;       ///< bound constant / assign value (float ch.)
  std::int64_t scalar_i = 0;   ///< same, integer channel
  ScalarSlot* scalar_out = nullptr;  ///< reduce-to-scalar result

  const gbtl::IndexArray* row_indices = nullptr;  ///< null = AllIndices
  const gbtl::IndexArray* col_indices = nullptr;  ///< null = AllIndices

  bool replace = false;
  bool has_scalar_seed = false;  ///< reduce: scalar_out holds a seed value

  double extra0 = 0.0;  ///< algorithm parameters (e.g. PageRank damping)
  double extra1 = 0.0;
  std::int64_t extra2 = 0;

  /// Fused-chain invocation: pointers to the bound containers (parameter
  /// order) and the runtime scalar values.
  const void* const* chain_ptrs = nullptr;
  const double* chain_scalars = nullptr;

  /// Set for interp-mode kernels, which interpret the descriptor at run
  /// time; compiled kernels ignore it.
  const OpRequest* request = nullptr;
};

using KernelFn = void (*)(const KernelArgs*);

}  // namespace pygb::jit
