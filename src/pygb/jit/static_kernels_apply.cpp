// Build-time registrations: apply (plain + bound unary ops) and reduce.
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit::static_reg {

namespace {

// Unary-op specs: descriptor + glue op-maker.
#define PYGB_UOP_SPEC(NAME)                                              \
  struct Uop##NAME {                                                     \
    static pygb::UnaryOp descriptor() { return pygb::UnaryOp(#NAME); }   \
    using maker = PlainUnary<gbtl::NAME>;                                \
  };
PYGB_UOP_SPEC(Identity)
PYGB_UOP_SPEC(AdditiveInverse)
PYGB_UOP_SPEC(MultiplicativeInverse)
PYGB_UOP_SPEC(LogicalNot)
#undef PYGB_UOP_SPEC

// Bound (bind-2nd) unary specs: the bound value travels at run time; only
// its dtype channel enters the key. Register for both channels.
#define PYGB_BOUND_SPEC(NAME)                                            \
  struct Bound##NAME {                                                   \
    static pygb::UnaryOp descriptor(pygb::DType channel) {               \
      return pygb::UnaryOp(pygb::BinaryOpName::k##NAME,                  \
                           pygb::Scalar(0.0, channel));                  \
    }                                                                    \
    using maker = BoundSecond<gbtl::NAME>;                               \
  };
PYGB_BOUND_SPEC(Times)
PYGB_BOUND_SPEC(Plus)
PYGB_BOUND_SPEC(Minus)
PYGB_BOUND_SPEC(Div)
PYGB_BOUND_SPEC(Max)
PYGB_BOUND_SPEC(Min)
#undef PYGB_BOUND_SPEC

/// Register apply_m and apply_v across the three mask kinds each.
template <typename CT, typename AT, typename Spec, typename Acc>
void reg_apply_all(Registry& r, const pygb::UnaryOp& desc) {
  auto reg_m = [&]<MaskKind MK>() {
    OpRequest req;
    req.func = func::kApplyM;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.unary_op = desc;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_apply_m<CT, AT, typename Spec::maker, false, MK,
                                   typename Acc::template type<CT>>);
  };
  auto reg_v = [&]<MaskKind MK>() {
    OpRequest req;
    req.func = func::kApplyV;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.unary_op = desc;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_apply_v<CT, AT, typename Spec::maker, MK,
                                   typename Acc::template type<CT>>);
  };
  reg_m.template operator()<MaskKind::kNone>();
  reg_m.template operator()<MaskKind::kMatrix>();
  reg_m.template operator()<MaskKind::kMatrixComp>();
  reg_v.template operator()<MaskKind::kNone>();
  reg_v.template operator()<MaskKind::kVector>();
  reg_v.template operator()<MaskKind::kVectorComp>();
}

template <typename CT, typename AT, typename Mon, typename Acc>
void reg_reduce(Registry& r) {
  {
    OpRequest req;
    req.func = func::kReduceMS;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.monoid = Mon::descriptor();
    req.accum = Acc::descriptor();
    r.register_static(
        req.key(),
        &run_reduce_m_s<CT, AT, typename Mon::template type<CT>, false,
                        typename Acc::template type<CT>>);
  }
  {
    OpRequest req;
    req.func = func::kReduceVS;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.monoid = Mon::descriptor();
    req.accum = Acc::descriptor();
    r.register_static(
        req.key(),
        &run_reduce_v_s<CT, AT, typename Mon::template type<CT>,
                        typename Acc::template type<CT>>);
  }
  {
    OpRequest req;
    req.func = func::kReduceMV;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.monoid = Mon::descriptor();
    req.accum = Acc::descriptor();
    req.mask = MaskKind::kNone;
    r.register_static(
        req.key(),
        &run_reduce_m_v<CT, AT, typename Mon::template type<CT>, false,
                        MaskKind::kNone, typename Acc::template type<CT>>);
    req.mask = MaskKind::kVector;
    r.register_static(
        req.key(),
        &run_reduce_m_v<CT, AT, typename Mon::template type<CT>, false,
                        MaskKind::kVector, typename Acc::template type<CT>>);
    req.mask = MaskKind::kVectorComp;
    r.register_static(
        req.key(),
        &run_reduce_m_v<CT, AT, typename Mon::template type<CT>, false,
                        MaskKind::kVectorComp,
                        typename Acc::template type<CT>>);
  }
}

}  // namespace

void register_apply_reduce(Registry& r) {
  for_types(DtCore{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_apply_all<T, T, UopIdentity, AccNone>(r, UopIdentity::descriptor());
    reg_apply_all<T, T, UopAdditiveInverse, AccNone>(
        r, UopAdditiveInverse::descriptor());
    reg_apply_all<T, T, UopLogicalNot, AccNone>(r,
                                                UopLogicalNot::descriptor());
    // Bound ops for both scalar channels (int and float constants).
    reg_apply_all<T, T, BoundTimes, AccNone>(
        r, BoundTimes::descriptor(DType::kFP64));
    reg_apply_all<T, T, BoundTimes, AccNone>(
        r, BoundTimes::descriptor(DType::kInt64));
    reg_apply_all<T, T, BoundPlus, AccNone>(
        r, BoundPlus::descriptor(DType::kFP64));
    reg_apply_all<T, T, BoundPlus, AccNone>(
        r, BoundPlus::descriptor(DType::kInt64));
    reg_apply_all<T, T, BoundMinus, AccNone>(
        r, BoundMinus::descriptor(DType::kFP64));

    reg_reduce<T, T, MonPlus, AccNone>(r);
    reg_reduce<T, T, MonMin, AccNone>(r);
    reg_reduce<T, T, MonMax, AccNone>(r);
    reg_reduce<T, T, MonPlus, AccPlus>(r);
  });
  for_types(TypeList<double, float>{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_apply_all<T, T, UopMultiplicativeInverse, AccNone>(
        r, UopMultiplicativeInverse::descriptor());
    reg_apply_all<T, T, BoundDiv, AccNone>(
        r, BoundDiv::descriptor(DType::kFP64));
  });
  // Wide plain coverage for reduce-to-scalar (cheap kernels).
  for_types(DtWide{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_reduce<T, T, MonPlus, AccNone>(r);
  });
}

}  // namespace pygb::jit::static_reg
