#include "pygb/jit/registry.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "pygb/faultinj.hpp"
#include "pygb/jit/cache.hpp"
#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/loader.hpp"
#include "pygb/jit/subprocess.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace fs = std::filesystem;

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kAuto:
      return "auto";
    case Mode::kStatic:
      return "static";
    case Mode::kJit:
      return "jit";
    case Mode::kInterp:
      return "interp";
  }
  return "?";
}

Mode parse_mode(const std::string& name) {
  if (name == "auto") return Mode::kAuto;
  if (name == "static") return Mode::kStatic;
  if (name == "jit") return Mode::kJit;
  if (name == "interp") return Mode::kInterp;
  throw std::invalid_argument("pygb: unknown PYGB_JIT_MODE '" + name + "'");
}

std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A cold key currently being resolved. The owner thread compiles with no
/// registry lock held; same-key requesters wait here, other keys fly by.
struct Registry::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  KernelFn fn = nullptr;
  std::exception_ptr error;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  if (const char* m = std::getenv("PYGB_JIT_MODE");
      m != nullptr && *m != '\0') {
    set_mode(parse_mode(m));
  }
  if (const char* d = std::getenv("PYGB_CACHE_DIR");
      d != nullptr && *d != '\0') {
    cache_dir_ = d;
  } else {
    cache_dir_ = (fs::temp_directory_path() / "pygb_module_cache").string();
  }
  clean_cache_litter(cache_dir_);
  if (const char* t = std::getenv("PYGB_TIER"); t != nullptr) {
    set_tier_async(std::string(t) == "async");
  }
  register_static_kernels(*this);
}

Registry::~Registry() {
  {
    std::lock_guard lock(tier_mu_);
    tier_stop_ = true;
  }
  tier_cv_.notify_all();
  if (tier_thread_.joinable()) tier_thread_.join();
}

void Registry::register_static(const std::string& key, KernelFn fn) {
  std::lock_guard lock(static_mu_);
  static_table_.emplace(key, fn);
  // Backend axis: a statically instantiated kernel serves every backend —
  // the gbtl ops consult the thread's active backend (installed by the
  // dispatcher's BackendScope) at run time, so the same function pointer
  // is registered under each non-scalar key spelling too.
  static_table_.emplace(key + "|be=simd", fn);
}

std::string Registry::cache_dir() const {
  std::lock_guard lock(mu_);
  return cache_dir_;
}

void Registry::set_cache_dir(const std::string& dir) {
  {
    std::lock_guard lock(mu_);
    cache_dir_ = dir;
  }
  clean_cache_litter(dir);
}

void Registry::clear_memory_cache() {
  {
    std::lock_guard lock(mu_);
    memory_cache_.clear();
  }
  breaker_.reset();
}

void Registry::clear_disk_cache() {
  {
    std::lock_guard lock(mu_);
    memory_cache_.clear();
    std::error_code ec;
    fs::remove_all(cache_dir_, ec);
  }
  breaker_.reset();
}

RegistryStats Registry::stats() const {
  RegistryStats s;
  s.lookups = obs::counter_value(obs::Counter::kRegistryLookups);
  s.static_hits = obs::counter_value(obs::Counter::kStaticHits);
  s.memory_hits = obs::counter_value(obs::Counter::kMemoryHits);
  s.disk_hits = obs::counter_value(obs::Counter::kDiskHits);
  s.compiles = obs::counter_value(obs::Counter::kCompiles);
  s.interp_dispatches =
      obs::counter_value(obs::Counter::kInterpDispatches);
  s.jit_fallbacks = obs::counter_value(obs::Counter::kJitFallbacks);
  s.cache_quarantines =
      obs::counter_value(obs::Counter::kCacheQuarantines);
  s.compile_seconds =
      static_cast<double>(obs::counter_value(obs::Counter::kCompileNanos)) *
      1e-9;
  s.jit_timeouts = obs::counter_value(obs::Counter::kJitTimeouts);
  s.jit_retries = obs::counter_value(obs::Counter::kJitRetries);
  s.waiter_timeouts = obs::counter_value(obs::Counter::kWaiterTimeouts);
  s.breaker_opens = obs::counter_value(obs::Counter::kBreakerOpens);
  s.breaker_probes = obs::counter_value(obs::Counter::kBreakerProbes);
  s.breaker_short_circuits =
      obs::counter_value(obs::Counter::kBreakerShortCircuits);
  s.lock_timeouts = obs::counter_value(obs::Counter::kLockTimeouts);
  s.compiled_requests = obs::counter_value(obs::Counter::kCompiledRequests);
  s.compiled_served = obs::counter_value(obs::Counter::kCompiledServed);
  s.compiled_fallbacks =
      obs::counter_value(obs::Counter::kCompiledFallbacks);
  s.compiled_restarts = obs::counter_value(obs::Counter::kCompiledRestarts);
  s.compiled_breaker_trips =
      obs::counter_value(obs::Counter::kCompiledBreakerTrips);
  s.tier_async_compiles =
      obs::counter_value(obs::Counter::kTierAsyncCompiles);
  s.tier_deferred_serves =
      obs::counter_value(obs::Counter::kTierDeferredServes);
  return s;
}

void Registry::reset_stats() { obs::reset_counters(); }

std::size_t Registry::inflight_count() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

std::size_t Registry::static_kernel_count() const {
  std::lock_guard lock(static_mu_);
  return static_table_.size();
}

bool Registry::compiler_available() const {
  return pygb::jit::compiler_available();
}

KernelFn Registry::resolve_static(const std::string& key) const {
  std::lock_guard lock(static_mu_);
  auto it = static_table_.find(key);
  return it == static_table_.end() ? nullptr : it->second;
}

KernelFn Registry::try_load_published(const std::string& so_path,
                                      const std::string& stamp) {
  std::error_code ec;
  if (!fs::exists(so_path, ec)) return nullptr;
  std::string err;
  if (KernelFn fn = load_kernel(so_path, &err, stamp)) return fn;
  // Truncated, corrupt, hash-colliding, or wrong-environment module: move
  // it aside (never silently run it, never retry it) and recompile.
  quarantine_module(so_path);
  obs::counter_add(obs::Counter::kCacheQuarantines);
  flightrec::record(flightrec::EventKind::kQuarantine, "verify");
  return nullptr;
}

KernelFn Registry::build_module(const OpRequest& req, const std::string& key,
                                const std::string& cache_dir,
                                const char** backend) {
  const std::string stamp = module_stamp(key);
  const std::string stem = module_stem(key);
  const fs::path dir(cache_dir);
  const fs::path so_path = dir / (stem + ".so");

  // Disk cache fast path (no lock): a previous process or run already
  // published a verified module.
  if (KernelFn fn = try_load_published(so_path.string(), stamp)) {
    obs::counter_add(obs::Counter::kDiskHits);
    *backend = "jit-disk";
    return fn;
  }

  std::error_code ec;
  fs::create_directories(dir, ec);

  // Cross-process coalescing: hold the per-stem advisory flock across
  // compile + publish. A process that lost the race blocks here and finds
  // the module already published when it gets the lock — one g++ run per
  // cold key machine-wide, not per process. The acquisition is BOUNDED
  // (lock_timeout_ms): a peer wedged while holding the lock costs us
  // coalescing, never liveness — on deadline we proceed with a private
  // compile (the pid-unique tmp name and atomic rename keep that safe).
  std::optional<FileLock> lock;
  if (!faultinj::check(faultinj::site::kFlock)) {
    lock.emplace((dir / (stem + ".lock")).string());
  } else {
    obs::counter_add(obs::Counter::kFaultsInjected);  // lock skipped
  }
  if (KernelFn fn = try_load_published(so_path.string(), stamp)) {
    obs::counter_add(obs::Counter::kDiskHits);
    *backend = "jit-disk";
    return fn;
  }

  // Generate the translation unit (with the embedded verification stamp).
  const fs::path src_path = dir / (stem + ".cpp");
  std::string source;
  SourceInfo srcinfo;
  {
    obs::Span span("jit.codegen");
    source = generate_source(req, stamp, &srcinfo);
    span.attr("key", key).attr("bytes",
                               static_cast<std::uint64_t>(source.size()));
  }
  obs::counter_add(obs::Counter::kGeneratedSourceBytes, source.size());
  obs::record_value("codegen_bytes", source.size());
  {
    std::ofstream src(src_path);
    src << source;
  }
  {
    // Attribution sidecar, published beside the source so crash reports
    // (and offline tooling) can resolve a module stem without recompiling
    // anything. Best effort — a missing sidecar degrades the report, not
    // the kernel.
    std::string map = "{\"schema\":\"pygb.srcmap\",\"schema_version\":1,";
    map += "\"stem\":";
    obs::detail::append_json_string(map, stem);
    map += ",\"func\":";
    obs::detail::append_json_string(map, srcinfo.func);
    map += ",\"key\":";
    obs::detail::append_json_string(map, srcinfo.key);
    char hash_buf[19];
    std::snprintf(hash_buf, sizeof hash_buf, "0x%016llx",
                  static_cast<unsigned long long>(srcinfo.key_hash));
    map += ",\"key_hash\":\"" + std::string(hash_buf) + "\"";
    map += ",\"kernel_line\":" + std::to_string(srcinfo.kernel_line);
    map += ",\"dsl_file\":";
    obs::detail::append_json_string(map, srcinfo.dsl_file);
    map += ",\"source\":";
    obs::detail::append_json_string(map, stem + ".cpp");
    map += "}\n";
    std::ofstream out(dir / (stem + ".srcmap"));
    out << map;
  }

  // Compile to a process-private temp name, then atomically rename(2) into
  // place — a concurrent reader can never dlopen a half-written module.
  // (No registry lock is held across any of this.)
  const fs::path tmp_path =
      dir / (stem + ".so." + std::to_string(::getpid()) + ".tmp");
  flightrec::record(flightrec::EventKind::kCompileBegin,
                    srcinfo.func.c_str(), source.size(), srcinfo.key_hash);
  const CompileResult cr =
      compile_module(src_path.string(), tmp_path.string());
  flightrec::record(flightrec::EventKind::kCompileEnd, srcinfo.func.c_str(),
                    static_cast<std::uint64_t>(cr.seconds * 1e9),
                    srcinfo.key_hash, cr.ok ? 1 : 0);
  obs::counter_add(obs::Counter::kCompiles);
  obs::counter_add(obs::Counter::kCompileNanos,
                   static_cast<std::uint64_t>(cr.seconds * 1e9));
  if (!cr.ok) {
    // A killed/failed compile must not litter the cache: the orphaned
    // .tmp goes (the .log stays, carrying the "killed after Xms" trailer
    // for diagnosis until the hygiene sweeper reaps it).
    fs::remove(tmp_path, ec);
    const std::string msg = "pygb: JIT compilation " +
                            std::string(cr.timed_out ? "timed out" : "failed") +
                            " for key '" + key + "':\n" + cr.log;
    if (cr.transient) throw TransientJitError(msg);
    throw NoKernelError(msg);
  }

  if (auto fault = faultinj::check(faultinj::site::kCachePublish)) {
    obs::counter_add(obs::Counter::kFaultsInjected);
    if (fault.action == faultinj::Action::kCorrupt) {
      // Garble the compiled bytes before publication: the stamp scan in
      // load_kernel must reject the module and quarantine it.
      std::ofstream garble(tmp_path, std::ios::binary | std::ios::trunc);
      garble << "pygb faultinj: corrupted module bytes";
    } else {
      fs::remove(tmp_path, ec);
      throw TransientJitError(
          "pygb: failed to publish compiled module for key '" + key +
          "': fault injected at cache_publish");
    }
  }

  fs::rename(tmp_path, so_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    // Publication is an environmental failure (full disk, permissions
    // race): the compile itself succeeded, so the key is not doomed.
    throw TransientJitError(
        "pygb: failed to publish compiled module for key '" + key +
        "': " + ec.message());
  }

  if (const std::uint64_t cap = cache_max_bytes(); cap != 0) {
    const std::uint64_t evicted = enforce_cache_cap(cache_dir, cap);
    if (evicted != 0) {
      obs::counter_add(obs::Counter::kCacheEvictedBytes, evicted);
    }
  }

  std::string err;
  KernelFn fn = load_kernel(so_path.string(), &err, stamp);
  if (fn == nullptr) {
    // The compile succeeded but the artifact won't load: corruption or a
    // dlopen resource failure, not a doomed key — quarantine (so the bad
    // file is never retried) and classify transient.
    quarantine_module(so_path.string());
    obs::counter_add(obs::Counter::kCacheQuarantines);
    flightrec::record(flightrec::EventKind::kQuarantine, "load");
    throw TransientJitError(
        "pygb: failed to load compiled module for key '" + key + "': " + err);
  }
  *backend = "jit-compile";
  return fn;
}

void Registry::warn_fallback_once(const char* what) {
  if (!fallback_warned_.exchange(true)) {
    std::fprintf(stderr,
                 "pygb: warning: JIT compilation unavailable at runtime; "
                 "degrading affected operations to the interpreter "
                 "(first failure: %s)\n",
                 what);
  }
}

bool Registry::tier_enqueue(const OpRequest& req, const std::string& key) {
  TierTask task;
  {
    std::lock_guard lock(mu_);
    auto [it, inserted] = inflight_.try_emplace(key);
    if (!inserted) return false;  // a fg leader or earlier bg task owns it
    it->second = std::make_shared<InFlight>();
    task.flight = it->second;
    task.dir = cache_dir_;
  }
  task.req = req;
  task.key = key;
  tier_pending_.fetch_add(1, std::memory_order_relaxed);
  obs::counter_add(obs::Counter::kTierAsyncCompiles);
  {
    std::lock_guard lock(tier_mu_);
    if (tier_stop_) {
      // Shutdown race: complete the flight empty rather than strand it.
      tier_pending_.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard l2(mu_);
      inflight_.erase(key);
      {
        std::lock_guard fl(task.flight->mu);
        task.flight->error = std::make_exception_ptr(TransientJitError(
            "pygb: background tier build abandoned at shutdown"));
        task.flight->done = true;
      }
      task.flight->cv.notify_all();
      return false;
    }
    if (!tier_started_) {
      tier_thread_ = std::thread(&Registry::tier_thread_main, this);
      tier_started_ = true;
    }
    tier_queue_.push_back(std::move(task));
  }
  tier_cv_.notify_one();
  return true;
}

void Registry::tier_thread_main() {
  for (;;) {
    TierTask task;
    {
      std::unique_lock lock(tier_mu_);
      tier_cv_.wait(lock, [&] { return tier_stop_ || !tier_queue_.empty(); });
      if (tier_queue_.empty()) return;  // stop with nothing queued
      task = std::move(tier_queue_.front());
      tier_queue_.pop_front();
      if (tier_stop_) {
        // Draining at shutdown: don't start a fresh g++; fail the flight
        // fast (waiters, if any, degrade like any transient JIT failure).
        lock.unlock();
        {
          std::lock_guard l2(mu_);
          inflight_.erase(task.key);
        }
        {
          std::lock_guard fl(task.flight->mu);
          task.flight->error = std::make_exception_ptr(TransientJitError(
              "pygb: background tier build abandoned at shutdown"));
          task.flight->done = true;
        }
        task.flight->cv.notify_all();
        tier_pending_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
    }
    tier_build(task);
    tier_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Registry::tier_build(TierTask& task) {
  KernelFn fn = nullptr;
  std::exception_ptr error;
  const char* how = "jit-compile";
  try {
    fn = build_module(task.req, task.key, task.dir, &how);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard lock(mu_);
    if (fn != nullptr) memory_cache_.emplace(task.key, fn);
    inflight_.erase(task.key);
  }
  {
    std::lock_guard fl(task.flight->mu);
    task.flight->fn = fn;
    task.flight->error = error;
    task.flight->done = true;
  }
  task.flight->cv.notify_all();
  // Same leader-only breaker discipline as the foreground path; the only
  // difference is that nobody is waiting on this build, so failures are
  // recorded and swallowed — the interpreter already answered everyone.
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const TransientJitError& e) {
      breaker_.on_failure(task.key, /*transient=*/true, e.what());
      warn_fallback_once(e.what());
    } catch (const std::exception& e) {
      breaker_.on_failure(task.key, /*transient=*/false, e.what());
      warn_fallback_once(e.what());
    } catch (...) {
      breaker_.on_failure(task.key, /*transient=*/false, "unknown error");
    }
    return;
  }
  breaker_.on_success(task.key);
}

KernelFn Registry::resolve_jit(const OpRequest& req, const std::string& key,
                               const char** backend) {
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  std::string dir;
  {
    std::lock_guard lock(mu_);
    if (auto it = memory_cache_.find(key); it != memory_cache_.end()) {
      obs::counter_add(obs::Counter::kMemoryHits);
      *backend = "jit-memory";
      return it->second;
    }
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) it->second = std::make_shared<InFlight>();
    flight = it->second;
    owner = inserted;
    dir = cache_dir_;
  }

  if (!owner) {
    // Another thread is already resolving this exact key: wait for its
    // result instead of compiling twice. The wait is DEADLINE-BOUNDED —
    // the leader's compile is killed at PYGB_JIT_TIMEOUT_MS, so done
    // should arrive within that plus a grace margin; if it does not (the
    // leader is wedged outside the compile itself) the waiter abandons it
    // with a transient, classified error rather than blocking forever.
    obs::Span span("registry.wait");
    span.attr("key", key);
    std::unique_lock fl(flight->mu);
    const int timeout = jit_timeout_ms();
    bool done = true;
    if (timeout == 0) {
      flight->cv.wait(fl, [&] { return flight->done; });
    } else {
      done = flight->cv.wait_for(fl, std::chrono::milliseconds(timeout + 2000),
                                 [&] { return flight->done; });
    }
    if (!done) {
      obs::counter_add(obs::Counter::kWaiterTimeouts);
      throw TransientJitError(
          "pygb: timed out waiting for the in-flight JIT build of key '" +
          key + "' (leader exceeded PYGB_JIT_TIMEOUT_MS plus grace)");
    }
    if (flight->error) std::rethrow_exception(flight->error);
    obs::counter_add(obs::Counter::kMemoryHits);
    *backend = "jit-wait";
    return flight->fn;
  }

  KernelFn fn = nullptr;
  std::exception_ptr error;
  const char* how = "jit-compile";
  try {
    fn = build_module(req, key, dir, &how);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard lock(mu_);
    if (fn != nullptr) memory_cache_.emplace(key, fn);
    inflight_.erase(key);
  }
  {
    std::lock_guard fl(flight->mu);
    flight->fn = fn;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  // Breaker accounting: exactly one report per build attempt, by the
  // leader — waiters (even ones that timed out above) never report, or a
  // single hang would be counted N times.
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const TransientJitError& e) {
      breaker_.on_failure(key, /*transient=*/true, e.what());
      throw;
    } catch (const std::exception& e) {
      breaker_.on_failure(key, /*transient=*/false, e.what());
      throw;
    } catch (...) {
      breaker_.on_failure(key, /*transient=*/false, "unknown error");
      throw;
    }
  }
  breaker_.on_success(key);
  *backend = how;
  return fn;
}

KernelFn Registry::get(const OpRequest& req, ResolveInfo* info) {
  obs::counter_add(obs::Counter::kRegistryLookups);
  std::string key = req.key();
  const char* backend = "";
  KernelFn fn = nullptr;

  switch (mode()) {
    case Mode::kStatic: {
      fn = resolve_static(key);
      if (fn == nullptr) {
        throw NoKernelError(
            "pygb: no statically instantiated kernel for key '" + key +
            "' (the ahead-of-time combination space is intractable — see "
            "combination_space(); use jit/auto mode)");
      }
      obs::counter_add(obs::Counter::kStaticHits);
      backend = "static";
      break;
    }
    case Mode::kJit:
      fn = resolve_jit(req, key, &backend);
      break;
    case Mode::kInterp:
      obs::counter_add(obs::Counter::kInterpDispatches);
      backend = "interp";
      fn = interp_kernel();
      break;
    case Mode::kAuto: {
      if ((fn = resolve_static(key)) != nullptr) {
        obs::counter_add(obs::Counter::kStaticHits);
        backend = "static";
        break;
      }
      // Degradation ladder: static → jit → interp. A failed compile or
      // load must not abort a caller mid-algorithm in auto mode — the
      // interpreter computes the same result (slower), the circuit
      // breaker keeps later calls off a failing compile path (permanently
      // for deterministic compile errors, for a healing TTL for transient
      // ones), and the event is counted + warned once. kJit mode keeps
      // throwing. Exception: user-defined operators and fused chains are
      // compiled units the interpreter cannot execute, so degrading would
      // turn a compile error into a confusing "interpreter refuses" error
      // — for those the JIT failure propagates instead.
      const bool interp_can_serve = !req.chain && !req.has_user_op();
      // Background tiering (PYGB_TIER=async): don't make the first caller
      // of a cold key wait for g++ — serve the interpreter NOW, enqueue
      // the build, and let the compiled kernel hot-swap in for the next
      // call via the ordinary in-flight/memory-cache machinery.
      if (tier_async_enabled() && interp_can_serve && compiler_available()) {
        {
          std::lock_guard lock(mu_);
          if (auto it = memory_cache_.find(key); it != memory_cache_.end()) {
            obs::counter_add(obs::Counter::kMemoryHits);
            backend = "jit-memory";
            fn = it->second;
            break;
          }
        }
        if (breaker_.acquire(key) == CircuitBreaker::Decision::kShortCircuit) {
          warn_fallback_once(
              ("JIT circuit open: " + breaker_.describe(key)).c_str());
          obs::counter_add(obs::Counter::kJitFallbacks);
        } else {
          tier_enqueue(req, key);  // no-op if a build is already pending
          obs::counter_add(obs::Counter::kTierDeferredServes);
        }
        obs::counter_add(obs::Counter::kInterpDispatches);
        backend = "interp-tier";
        fn = interp_kernel();
        break;
      }
      if (compiler_available()) {
        const auto decision = breaker_.acquire(key);
        if (decision != CircuitBreaker::Decision::kShortCircuit) {
          try {
            fn = resolve_jit(req, key, &backend);
            // The resolve may have been satisfied without a build (memory
            // hit, coalesced wait): release any probe slot this caller
            // claimed. Redundant after a leader's own on_success.
            breaker_.on_success(key);
            break;
          } catch (const std::exception& e) {
            warn_fallback_once(e.what());
            if (!interp_can_serve) throw;
          }
        } else if (!interp_can_serve) {
          throw NoKernelError(
              "pygb: JIT circuit open for key '" + key + "' (" +
              breaker_.describe(key) +
              ") and the request cannot degrade to the interpreter");
        } else {
          // The short-circuit → interpreter path used to be silent; the
          // breaker's describe() carries the capped stderr tail of the
          // failure that opened it, which is the diagnostic a user needs.
          warn_fallback_once(
              ("JIT circuit open: " + breaker_.describe(key)).c_str());
        }
        obs::counter_add(obs::Counter::kJitFallbacks);
      }
      obs::counter_add(obs::Counter::kInterpDispatches);
      backend = "interp";
      fn = interp_kernel();
      break;
    }
  }
  if (fn == nullptr) throw std::logic_error("pygb: corrupt registry mode");
  if (info != nullptr) {
    info->backend = backend;
    info->key = std::move(key);
  }
  return fn;
}

std::uint64_t combination_space(const std::string& f) {
  // §V of the paper's accounting: 11 POD dtypes per container slot (mxm
  // takes four containers: two inputs, output, mask → 11^4); from the 17
  // binary operators there are 17 * 11^3 accumulator types (two input and
  // one output type each) and ~17*60 = 1020 semiring types; each input can
  // be transposed and the mask complemented. That yields the paper's
  // "roughly 6 trillion combinations of template parameters for mxm".
  constexpr std::uint64_t kD = 11;   // dtypes
  constexpr std::uint64_t kB = 17;   // binary operators
  constexpr std::uint64_t kU = 4;    // unary operators
  constexpr std::uint64_t kAccumTyped =
      kB * kD * kD * kD + 1;         // typed accumulators or none
  constexpr std::uint64_t kAccum = kB + 1;  // untyped: accumulator or none
  constexpr std::uint64_t kMaskM = 3;  // none / mask / complemented
  constexpr std::uint64_t kSemirings = 1020;  // paper's count
  if (f == func::kMxM) {
    return kD * kD * kD * kD * kAccumTyped * kSemirings * 4 * 2;
  }
  if (f == func::kMxV || f == func::kVxM) {
    return kD * kD * kD * kD * kAccumTyped * kSemirings * 2 * 2;
  }
  if (f == func::kEWiseAddMM || f == func::kEWiseMultMM) {
    return kD * kD * kD * kD * kB * kAccum * 4 * kMaskM;
  }
  if (f == func::kEWiseAddVV || f == func::kEWiseMultVV) {
    return kD * kD * kD * kD * kB * kAccum * kMaskM;
  }
  if (f == func::kApplyM) {
    return kD * kD * kD * (kU + kB) * kAccum * 2 * kMaskM;
  }
  if (f == func::kApplyV) {
    return kD * kD * kD * (kU + kB) * kAccum * kMaskM;
  }
  if (f == func::kReduceMS || f == func::kReduceVS) {
    return kD * kD * kB * kAccum;
  }
  if (f == func::kReduceMV) {
    return kD * kD * kD * kB * kAccum * 2 * kMaskM;
  }
  // assign/extract/transpose: dtypes x accum x mask.
  return kD * kD * kD * kAccum * kMaskM;
}

}  // namespace pygb::jit
