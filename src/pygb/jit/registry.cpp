#include "pygb/jit/registry.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/loader.hpp"

namespace pygb::jit {

namespace fs = std::filesystem;

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kAuto:
      return "auto";
    case Mode::kStatic:
      return "static";
    case Mode::kJit:
      return "jit";
    case Mode::kInterp:
      return "interp";
  }
  return "?";
}

Mode parse_mode(const std::string& name) {
  if (name == "auto") return Mode::kAuto;
  if (name == "static") return Mode::kStatic;
  if (name == "jit") return Mode::kJit;
  if (name == "interp") return Mode::kInterp;
  throw std::invalid_argument("pygb: unknown PYGB_JIT_MODE '" + name + "'");
}

std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  if (const char* m = std::getenv("PYGB_JIT_MODE");
      m != nullptr && *m != '\0') {
    mode_ = parse_mode(m);
  }
  if (const char* d = std::getenv("PYGB_CACHE_DIR");
      d != nullptr && *d != '\0') {
    cache_dir_ = d;
  } else {
    cache_dir_ = (fs::temp_directory_path() / "pygb_module_cache").string();
  }
  register_static_kernels(*this);
}

void Registry::register_static(const std::string& key, KernelFn fn) {
  static_table_.emplace(key, fn);
}

void Registry::set_cache_dir(const std::string& dir) {
  std::lock_guard lock(mu_);
  cache_dir_ = dir;
}

void Registry::clear_memory_cache() {
  std::lock_guard lock(mu_);
  memory_cache_.clear();
}

void Registry::clear_disk_cache() {
  std::lock_guard lock(mu_);
  memory_cache_.clear();
  std::error_code ec;
  fs::remove_all(cache_dir_, ec);
}

RegistryStats Registry::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void Registry::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = RegistryStats{};
}

std::size_t Registry::static_kernel_count() const {
  return static_table_.size();
}

bool Registry::compiler_available() const {
  return pygb::jit::compiler_available();
}

KernelFn Registry::resolve_static(const std::string& key) const {
  auto it = static_table_.find(key);
  return it == static_table_.end() ? nullptr : it->second;
}

KernelFn Registry::resolve_jit(const OpRequest& req, const std::string& key) {
  // Memory cache (caller holds the lock).
  if (auto it = memory_cache_.find(key); it != memory_cache_.end()) {
    ++stats_.memory_hits;
    return it->second;
  }

  const std::string stem = "pygb_" + std::to_string(key_hash(key));
  const fs::path dir(cache_dir_);
  const fs::path so_path = dir / (stem + ".so");

  // Disk cache: a previous process (or run) already compiled this module.
  if (fs::exists(so_path)) {
    std::string err;
    if (KernelFn fn = load_kernel(so_path.string(), &err)) {
      ++stats_.disk_hits;
      memory_cache_.emplace(key, fn);
      return fn;
    }
    // Corrupt/incompatible module: fall through and recompile.
    std::error_code ec;
    fs::remove(so_path, ec);
  }

  // Compile.
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path src_path = dir / (stem + ".cpp");
  {
    std::ofstream src(src_path);
    src << generate_source(req);
  }
  const CompileResult cr = compile_module(src_path.string(), so_path.string());
  ++stats_.compiles;
  stats_.compile_seconds += cr.seconds;
  if (!cr.ok) {
    throw NoKernelError("pygb: JIT compilation failed for key '" + key +
                        "':\n" + cr.log);
  }
  std::string err;
  KernelFn fn = load_kernel(so_path.string(), &err);
  if (fn == nullptr) {
    throw NoKernelError("pygb: failed to load compiled module for key '" +
                        key + "': " + err);
  }
  memory_cache_.emplace(key, fn);
  return fn;
}

KernelFn Registry::get(const OpRequest& req) {
  const std::string key = req.key();
  std::lock_guard lock(mu_);
  ++stats_.lookups;

  switch (mode_) {
    case Mode::kStatic: {
      if (KernelFn fn = resolve_static(key)) {
        ++stats_.static_hits;
        return fn;
      }
      throw NoKernelError(
          "pygb: no statically instantiated kernel for key '" + key +
          "' (the ahead-of-time combination space is intractable — see "
          "combination_space(); use jit/auto mode)");
    }
    case Mode::kJit:
      return resolve_jit(req, key);
    case Mode::kInterp:
      ++stats_.interp_dispatches;
      return interp_kernel();
    case Mode::kAuto: {
      if (KernelFn fn = resolve_static(key)) {
        ++stats_.static_hits;
        return fn;
      }
      if (compiler_available()) {
        return resolve_jit(req, key);
      }
      ++stats_.interp_dispatches;
      return interp_kernel();
    }
  }
  throw std::logic_error("pygb: corrupt registry mode");
}

std::uint64_t combination_space(const std::string& f) {
  // §V of the paper's accounting: 11 POD dtypes per container slot (mxm
  // takes four containers: two inputs, output, mask → 11^4); from the 17
  // binary operators there are 17 * 11^3 accumulator types (two input and
  // one output type each) and ~17*60 = 1020 semiring types; each input can
  // be transposed and the mask complemented. That yields the paper's
  // "roughly 6 trillion combinations of template parameters for mxm".
  constexpr std::uint64_t kD = 11;   // dtypes
  constexpr std::uint64_t kB = 17;   // binary operators
  constexpr std::uint64_t kU = 4;    // unary operators
  constexpr std::uint64_t kAccumTyped =
      kB * kD * kD * kD + 1;         // typed accumulators or none
  constexpr std::uint64_t kAccum = kB + 1;  // untyped: accumulator or none
  constexpr std::uint64_t kMaskM = 3;  // none / mask / complemented
  constexpr std::uint64_t kSemirings = 1020;  // paper's count
  if (f == func::kMxM) {
    return kD * kD * kD * kD * kAccumTyped * kSemirings * 4 * 2;
  }
  if (f == func::kMxV || f == func::kVxM) {
    return kD * kD * kD * kD * kAccumTyped * kSemirings * 2 * 2;
  }
  if (f == func::kEWiseAddMM || f == func::kEWiseMultMM) {
    return kD * kD * kD * kD * kB * kAccum * 4 * kMaskM;
  }
  if (f == func::kEWiseAddVV || f == func::kEWiseMultVV) {
    return kD * kD * kD * kD * kB * kAccum * kMaskM;
  }
  if (f == func::kApplyM) {
    return kD * kD * kD * (kU + kB) * kAccum * 2 * kMaskM;
  }
  if (f == func::kApplyV) {
    return kD * kD * kD * (kU + kB) * kAccum * kMaskM;
  }
  if (f == func::kReduceMS || f == func::kReduceVS) {
    return kD * kD * kB * kAccum;
  }
  if (f == func::kReduceMV) {
    return kD * kD * kD * kB * kAccum * 2 * kMaskM;
  }
  // assign/extract/transpose: dtypes x accum x mask.
  return kD * kD * kD * kAccum * kMaskM;
}

}  // namespace pygb::jit
