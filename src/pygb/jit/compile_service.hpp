// pygb/jit/compile_service.hpp — the persistent compile service: a
// long-lived `pygb_compiled` worker process that amortizes compiler
// startup (and keeps a precompiled header of the JIT glue warm) across
// many module compiles, supervised by the client process so it can die
// without taking a single user request with it.
//
// Why a daemon at all: every cold JIT module pays one full g++ fork/exec —
// driver startup, header parse, the works. Codon-style resident compilers
// show what a warm process buys; for pygb the dominant reusable artifact
// is the parse of pygb/jit/glue.hpp, which every generated module includes
// first. The worker builds it ONCE into a .gch at startup and serves each
// subsequent compile against it.
//
// Why it must be supervised: pygb_serve is multi-tenant. A resident
// compiler that can hang, crash, or babble garbage is a new
// single-point-of-failure unless every failure mode is detected, bounded,
// and survivable:
//
//   * the worker is spawned with the PR 4 sandbox discipline
//     (spawn_supervised: own process group, no core dumps, CLOEXEC
//     exec-errno status pipe, SIGKILL-on-parent-death) and killed with the
//     same SIGTERM → grace → SIGKILL escalation (terminate_supervised);
//   * client and worker speak a VERSIONED, LENGTH-PREFIXED frame protocol
//     over a socketpair, with a per-request deadline on the client side —
//     a hung worker is killed and restarted, never waited on forever;
//   * worker death, hang, or protocol corruption (bad frame, wrong
//     version, wrong request id) triggers a restart with capped
//     exponential backoff + faultinj::jitter_unit;
//   * PYGB_COMPILED_MAX_RESTARTS consecutive service failures trip a
//     SERVICE-LEVEL breaker (TTL'd, with a reopen probe) so every compile
//     transparently degrades to the existing in-process fork/exec path —
//     which also remains the only path when PYGB_COMPILED=off (the
//     default). Service trouble costs latency, never availability.
//
// The degradation ladder a compile request descends (docs/ROBUSTNESS.md):
//
//   warm service → service restart → service breaker → in-process
//   fork/exec → (kAuto only) interpreter
//
// faultinj site "compiled" is enacted INSIDE the worker (it inherits
// PYGB_FAULTS), so chaos runs drive the real kill/restart machinery.
//
// Env knobs (docs/API.md):
//   PYGB_COMPILED              on|off — route compiles through the service
//   PYGB_COMPILED_BIN          worker binary (default: a `pygb_compiled`
//                              sibling of /proc/self/exe, then ../tools/,
//                              then $PATH)
//   PYGB_COMPILED_MAX_RESTARTS consecutive failures before the breaker (3)
//   PYGB_COMPILED_TIMEOUT_MS   per-request deadline (default
//                              PYGB_JIT_TIMEOUT_MS)
//   PYGB_COMPILED_BREAKER_TTL_MS  breaker open duration (60000)
//   PYGB_COMPILED_PCH          off — skip the glue.hpp precompiled header
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

#include "pygb/jit/compiler.hpp"

namespace pygb::jit {

// ---------------------------------------------------------------------------
// Wire protocol (shared by the client below and tools/pygb_compiled.cpp)
// ---------------------------------------------------------------------------

namespace compiled {

/// Bumped when the frame grammar changes. The worker announces its version
/// in the handshake; a mismatch is protocol corruption (kill + restart),
/// never a parse attempt — a stale worker binary from an older build must
/// not be trusted with requests.
inline constexpr int kProtocolVersion = 1;

/// First handshake field. A worker that doesn't lead with this is not a
/// pygb_compiled worker at all.
inline constexpr const char* kMagic = "PYGB-COMPILED";

/// Frames larger than this are protocol corruption (stderr tails are
/// capped far below it by the subprocess runner).
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/// Field separator inside frame payloads. Only the LAST field of a payload
/// (the captured stderr tail) may contain arbitrary bytes; parsers split
/// at most the leading fixed field count.
inline constexpr char kSep = '\x1f';

/// Write one `[u32 LE length][payload]` frame. Returns false on any write
/// error (EPIPE = peer died).
bool write_frame(int fd, const std::string& payload);

/// Read one frame within `deadline_ms` (<=0 waits forever). Outcomes are
/// distinguished so the supervisor can classify: kOk fills `payload`;
/// kEof = peer closed (death); kTimeout = deadline expired (hang);
/// kMalformed = oversized/short frame (corruption).
enum class ReadResult : std::uint8_t { kOk, kEof, kTimeout, kMalformed };
ReadResult read_frame(int fd, std::string* payload, int deadline_ms);

/// Split the first `max_fields - 1` separators of `payload`; the final
/// field takes the remainder verbatim (so a stderr tail containing kSep
/// can't shift the grammar).
void split_fields(const std::string& payload, char sep,
                  std::size_t max_fields, std::string out[]);

}  // namespace compiled

// ---------------------------------------------------------------------------
// Client / supervisor
// ---------------------------------------------------------------------------

/// PYGB_COMPILED_MAX_RESTARTS — consecutive service failures tolerated
/// before the service breaker opens (default 3; minimum 0 = first failure
/// trips it).
int compiled_max_restarts();

/// PYGB_COMPILED_TIMEOUT_MS — per-request deadline for one service
/// compile, handshake included (default: jit_timeout_ms()).
int compiled_timeout_ms();

/// PYGB_COMPILED_BREAKER_TTL_MS — how long the tripped service breaker
/// short-circuits before allowing one reopen probe (default 60000).
int compiled_breaker_ttl_ms();

/// Resolve the worker binary: PYGB_COMPILED_BIN, else a `pygb_compiled`
/// sibling of /proc/self/exe, else `../tools/pygb_compiled` relative to
/// the executable (the build-tree layout for tests and benches), else the
/// bare name for $PATH resolution.
std::string compiled_worker_path();

class CompileService {
 public:
  /// Process-wide instance (one worker serves every thread's compiles; the
  /// worker compiles serially anyway, and requests serialize on its lock).
  static CompileService& instance();

  /// One service attempt. `serviced` means the WORKER answered — `result`
  /// is then authoritative, whether the compile succeeded or the compiler
  /// diagnosed the source. `serviced == false` is a SERVICE failure (off,
  /// breaker open, spawn failed, worker died/hung/corrupted): the caller
  /// falls back to the in-process runner and counts kCompiledFallbacks.
  struct Attempt {
    bool serviced = false;
    CompileResult result;
    std::string note;  ///< service-failure reason when !serviced
  };

  /// PYGB_COMPILED=on|1. Re-read by reset().
  bool enabled();

  /// Compile source → output on the service, bounded by `timeout_ms`
  /// (<=0 uses compiled_timeout_ms()). Thread-safe; never throws.
  Attempt compile(const std::string& source_path,
                  const std::string& output_path, int timeout_ms);

  /// Observability / test snapshot (takes the service lock).
  struct State {
    bool enabled = false;
    bool running = false;       ///< a worker is alive right now
    bool breaker_open = false;  ///< service-level breaker (not per-key)
    int restarts = 0;           ///< lifetime respawns after a failure
    int consecutive_failures = 0;
    pid_t worker_pid = -1;
    bool pch = false;  ///< worker announced a live precompiled header
  };
  State state();

  /// Kill and reap the worker (SIGTERM → grace → SIGKILL). Breaker and
  /// restart bookkeeping survive; the next enabled compile respawns.
  void shutdown();

  /// shutdown() + forget breaker/backoff state + re-read every env knob.
  /// Test fixtures call this after flipping PYGB_COMPILED*.
  void reset();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

 private:
  CompileService();
  struct Impl;
  Impl* impl_;  ///< leaked on purpose (at-exit safety, obs discipline)
};

/// Async-signal-safe service snapshot for the crash handler: relaxed
/// atomic loads only, no locks, no allocation (pygb/obs/crash.cpp).
namespace compiled_state {
struct Snapshot {
  int enabled = 0;
  long worker_pid = -1;       ///< -1 = no worker alive
  unsigned long restarts = 0;
  int breaker_open = 0;
  unsigned long requests = 0;
  unsigned long served = 0;
  unsigned long fallbacks = 0;
};
Snapshot snapshot() noexcept;
}  // namespace compiled_state

}  // namespace pygb::jit
