// pygb/jit/compile_service.cpp — client/supervisor for the persistent
// compile worker (see compile_service.hpp for the design brief).
#include "pygb/jit/compile_service.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "pygb/faultinj.hpp"
#include "pygb/jit/subprocess.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace compiled {

bool write_frame(int fd, const std::string& payload) {
  if (fd < 0 || payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char hdr[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  std::string buf(reinterpret_cast<char*>(hdr), 4);
  buf += payload;
  std::size_t off = 0;
  while (off < buf.size()) {
    // MSG_NOSIGNAL: a worker SIGKILLed between our frames must surface as
    // EPIPE, not kill THIS process with SIGPIPE.
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// Read exactly `want` bytes within the deadline. The frame header and
/// payload can each arrive in pieces; the deadline spans the whole frame.
ReadResult read_exact(int fd, char* dst, std::size_t want,
                      std::chrono::steady_clock::time_point deadline,
                      bool bounded) {
  std::size_t got = 0;
  while (got < want) {
    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return ReadResult::kTimeout;
      wait_ms = static_cast<int>(left);
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kEof;
    }
    if (pr == 0) return ReadResult::kTimeout;
    const ssize_t n = ::recv(fd, dst + got, want - got, 0);
    if (n == 0) return ReadResult::kEof;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kEof;
    }
    got += static_cast<std::size_t>(n);
  }
  return ReadResult::kOk;
}

}  // namespace

ReadResult read_frame(int fd, std::string* payload, int deadline_ms) {
  payload->clear();
  if (fd < 0) return ReadResult::kEof;
  const bool bounded = deadline_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? deadline_ms : 0);
  char hdr[4];
  const ReadResult hr = read_exact(fd, hdr, 4, deadline, bounded);
  if (hr != ReadResult::kOk) return hr;
  const std::uint32_t len = static_cast<std::uint32_t>(
      static_cast<unsigned char>(hdr[0]) |
      (static_cast<unsigned char>(hdr[1]) << 8) |
      (static_cast<unsigned char>(hdr[2]) << 16) |
      (static_cast<unsigned char>(hdr[3]) << 24));
  if (len > kMaxFrameBytes) return ReadResult::kMalformed;
  payload->resize(len);
  if (len == 0) return ReadResult::kOk;
  const ReadResult br = read_exact(fd, payload->data(), len, deadline, bounded);
  // A header without its payload is a torn frame, not a clean close.
  if (br == ReadResult::kEof) return ReadResult::kMalformed;
  return br;
}

void split_fields(const std::string& payload, char sep,
                  std::size_t max_fields, std::string out[]) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < max_fields; ++i) {
    if (i + 1 == max_fields) {
      out[i] = payload.substr(start);
      return;
    }
    const std::size_t pos = payload.find(sep, start);
    if (pos == std::string::npos) {
      out[i] = payload.substr(start);
      for (std::size_t j = i + 1; j < max_fields; ++j) out[j].clear();
      return;
    }
    out[i] = payload.substr(start, pos - start);
    start = pos + 1;
  }
}

}  // namespace compiled

namespace {

int env_int(const char* name, int fallback, int min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return parsed < min_value ? min_value : static_cast<int>(parsed);
}

// -- AS-safe mirror for the crash handler -----------------------------------

std::atomic<int> g_enabled{0};
std::atomic<long> g_worker_pid{-1};
std::atomic<unsigned long> g_restarts{0};
std::atomic<int> g_breaker_open{0};
std::atomic<unsigned long> g_requests{0};
std::atomic<unsigned long> g_served{0};
std::atomic<unsigned long> g_fallbacks{0};

using Clock = std::chrono::steady_clock;

constexpr int kBackoffBaseMs = 100;
constexpr int kBackoffCapMs = 5000;
/// IPC slack added to the worker's own compile deadline before the CLIENT
/// declares the worker hung (mirrors the registry's waiter grace).
constexpr int kIpcGraceMs = 2000;
/// jitter_unit stream key for service backoff (fnv1a("compiled")-distinct
/// literal so the service never locksteps with per-key breaker jitter).
constexpr std::uint64_t kJitterStream = 0x70794742636f6d70ULL;  // "pyGBcomp"

}  // namespace

int compiled_max_restarts() {
  return env_int("PYGB_COMPILED_MAX_RESTARTS", 3, 0);
}

int compiled_timeout_ms() {
  return env_int("PYGB_COMPILED_TIMEOUT_MS", jit_timeout_ms(), 0);
}

int compiled_breaker_ttl_ms() {
  return env_int("PYGB_COMPILED_BREAKER_TTL_MS", 60000, 1);
}

std::string compiled_worker_path() {
  const char* env = std::getenv("PYGB_COMPILED_BIN");
  if (env != nullptr && *env != '\0') return env;
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (n > 0) {
    exe[n] = '\0';
    const std::filesystem::path self(exe);
    std::error_code ec;
    // Installed layout: pygb_compiled next to the running binary.
    auto sibling = self.parent_path() / "pygb_compiled";
    if (std::filesystem::exists(sibling, ec)) return sibling.string();
    // Build-tree layout: tests/ and bench/ binaries live beside tools/.
    auto tools = self.parent_path().parent_path() / "tools" / "pygb_compiled";
    if (std::filesystem::exists(tools, ec)) return tools.string();
  }
  return "pygb_compiled";  // last resort: $PATH
}

struct CompileService::Impl {
  std::mutex mu;
  int enabled_cache = -1;  ///< -1 unknown, else 0/1 (reset() invalidates)

  pid_t pid = -1;
  int fd = -1;
  bool pch = false;
  int generation = 0;  ///< successful spawns this process

  int consecutive_failures = 0;
  Clock::time_point next_spawn_at{};  ///< backoff gate (epoch = no gate)
  bool breaker_open = false;
  Clock::time_point breaker_until{};
  std::uint64_t next_request_id = 1;

  // All callers hold `mu`.

  void cleanup_worker(int grace_ms) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    if (pid > 0) {
      terminate_supervised(pid, grace_ms);
      pid = -1;
      g_worker_pid.store(-1, std::memory_order_relaxed);
    }
    pch = false;
  }

  /// One service-level failure: back off, and past the restart budget trip
  /// the service breaker. Called with the worker already cleaned up.
  void record_failure(const char* detail, std::string* note) {
    ++consecutive_failures;
    const int budget = compiled_max_restarts();
    if (consecutive_failures > budget) {
      const double unit = faultinj::jitter_unit(
          kJitterStream, static_cast<std::uint64_t>(consecutive_failures));
      const auto ttl = std::chrono::milliseconds(static_cast<long>(
          compiled_breaker_ttl_ms() * (0.75 + 0.5 * unit)));
      breaker_open = true;
      breaker_until = Clock::now() + ttl;
      g_breaker_open.store(1, std::memory_order_relaxed);
      obs::counter_add(obs::Counter::kCompiledBreakerTrips);
      flightrec::record(flightrec::EventKind::kCompiled, "breaker",
                        static_cast<std::uint64_t>(consecutive_failures));
      *note += "; service breaker tripped after " +
               std::to_string(consecutive_failures) + " consecutive failures";
      return;
    }
    int backoff = kBackoffBaseMs;
    for (int i = 1; i < consecutive_failures && backoff < kBackoffCapMs; ++i) {
      backoff *= 2;
    }
    if (backoff > kBackoffCapMs) backoff = kBackoffCapMs;
    const double unit = faultinj::jitter_unit(
        kJitterStream, static_cast<std::uint64_t>(consecutive_failures));
    backoff = static_cast<int>(backoff * (0.75 + 0.5 * unit));
    next_spawn_at = Clock::now() + std::chrono::milliseconds(backoff);
    flightrec::record(flightrec::EventKind::kCompiled, detail,
                      static_cast<std::uint64_t>(consecutive_failures),
                      static_cast<std::uint64_t>(backoff));
    *note += "; restart " + std::to_string(consecutive_failures) + "/" +
             std::to_string(budget) + " backing off " +
             std::to_string(backoff) + "ms";
  }

  /// Spawn + handshake. Returns true with pid/fd/pch set, or false with a
  /// reason in *why (caller records the failure).
  bool spawn_worker(std::string* why) {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      *why = std::string("socketpair: ") + std::strerror(errno);
      return false;
    }
    // The client end must not leak into the worker (or any other child):
    // a leaked duplicate would keep "EOF on worker death" from ever firing.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    const SpawnOutcome so = spawn_supervised({compiled_worker_path()}, sv[1]);
    ::close(sv[1]);
    if (!so.ok()) {
      ::close(sv[0]);
      *why = std::string("spawn: ") + std::strerror(so.spawn_errno);
      return false;
    }
    // Handshake before any request. The deadline also covers the worker's
    // one-time glue.hpp PCH build, hence the jit-timeout floor.
    const int hs_ms = std::max(compiled_timeout_ms(), jit_timeout_ms());
    std::string payload;
    const auto rr = compiled::read_frame(sv[0], &payload,
                                         hs_ms > 0 ? hs_ms : 30000);
    if (rr != compiled::ReadResult::kOk) {
      ::close(sv[0]);
      terminate_supervised(so.pid, 200);
      *why = rr == compiled::ReadResult::kTimeout ? "handshake timeout"
             : rr == compiled::ReadResult::kEof   ? "worker died in handshake"
                                                  : "malformed handshake";
      return false;
    }
    std::string f[4];
    compiled::split_fields(payload, compiled::kSep, 4, f);
    if (f[0] != compiled::kMagic) {
      ::close(sv[0]);
      terminate_supervised(so.pid, 200);
      *why = "handshake magic mismatch";
      return false;
    }
    if (std::atoi(f[1].c_str()) != compiled::kProtocolVersion) {
      ::close(sv[0]);
      terminate_supervised(so.pid, 200);
      *why = "protocol version mismatch (worker v" + f[1] + ", client v" +
             std::to_string(compiled::kProtocolVersion) + ")";
      return false;
    }
    pid = so.pid;
    fd = sv[0];
    pch = f[3] == "1";
    ++generation;
    g_worker_pid.store(pid, std::memory_order_relaxed);
    if (generation > 1) {
      g_restarts.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add(obs::Counter::kCompiledRestarts);
      flightrec::record(flightrec::EventKind::kCompiled, "restart",
                        static_cast<std::uint64_t>(pid));
    } else {
      flightrec::record(flightrec::EventKind::kCompiled, "spawn",
                        static_cast<std::uint64_t>(pid));
    }
    return true;
  }
};

CompileService::CompileService() : impl_(new Impl()) {}

CompileService& CompileService::instance() {
  // Leaked (never destroyed): compiles can race process exit, and the
  // worker needs no at-exit kill — PR_SET_PDEATHSIG reaps it with us.
  static CompileService* s = new CompileService();
  return *s;
}

bool CompileService::enabled() {
  std::lock_guard lock(impl_->mu);
  if (impl_->enabled_cache < 0) {
    const char* v = std::getenv("PYGB_COMPILED");
    const bool on = v != nullptr && (std::strcmp(v, "on") == 0 ||
                                     std::strcmp(v, "1") == 0 ||
                                     std::strcmp(v, "true") == 0);
    impl_->enabled_cache = on ? 1 : 0;
    g_enabled.store(impl_->enabled_cache, std::memory_order_relaxed);
  }
  return impl_->enabled_cache == 1;
}

CompileService::Attempt CompileService::compile(
    const std::string& source_path, const std::string& output_path,
    int timeout_ms) {
  Attempt att;
  if (!enabled()) {
    att.note = "service disabled";
    return att;
  }
  g_requests.fetch_add(1, std::memory_order_relaxed);
  obs::counter_add(obs::Counter::kCompiledRequests);
  if (timeout_ms <= 0) timeout_ms = compiled_timeout_ms();

  std::lock_guard lock(impl_->mu);
  const auto now = Clock::now();

  if (impl_->breaker_open) {
    if (now < impl_->breaker_until) {
      g_fallbacks.fetch_add(1, std::memory_order_relaxed);
      att.note = "service breaker open";
      return att;
    }
    // TTL expired: one probe attempt. Leave only one failure of headroom so
    // a failing probe re-trips immediately instead of re-earning the whole
    // restart budget against a still-broken service.
    impl_->breaker_open = false;
    impl_->breaker_until = {};
    impl_->consecutive_failures = compiled_max_restarts();
    impl_->next_spawn_at = {};
    g_breaker_open.store(0, std::memory_order_relaxed);
    flightrec::record(flightrec::EventKind::kCompiled, "probe");
  }

  if (impl_->pid <= 0) {
    if (now < impl_->next_spawn_at) {
      // Respect the backoff gate without burning a restart: degrading one
      // request is cheaper than hammering a flapping worker back into the
      // breaker.
      g_fallbacks.fetch_add(1, std::memory_order_relaxed);
      att.note = "service restart backoff in progress";
      return att;
    }
    std::string why;
    if (!impl_->spawn_worker(&why)) {
      att.note = why;
      impl_->record_failure("died", &att.note);
      g_fallbacks.fetch_add(1, std::memory_order_relaxed);
      return att;
    }
  }

  const std::uint64_t id = impl_->next_request_id++;
  std::string req = "REQ";
  const char sep = compiled::kSep;
  req += sep;
  req += std::to_string(id);
  req += sep;
  req += std::to_string(timeout_ms);
  req += sep;
  req += std::to_string(jit_mem_limit_mb());
  req += sep;
  req += std::to_string(jit_max_retries());
  req += sep;
  req += compiler_command();
  req += sep;
  req += compile_flags();
  req += sep;
  req += source_include_dir();
  req += sep;
  req += source_path;
  req += sep;
  req += output_path;

  if (!compiled::write_frame(impl_->fd, req)) {
    impl_->cleanup_worker(200);
    att.note = "worker died (request write failed)";
    impl_->record_failure("died", &att.note);
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return att;
  }

  std::string payload;
  const auto rr =
      compiled::read_frame(impl_->fd, &payload, timeout_ms + kIpcGraceMs);
  if (rr != compiled::ReadResult::kOk) {
    // Classify before killing: a hang is killed, a death is only reaped.
    const char* what = rr == compiled::ReadResult::kTimeout ? "hang"
                       : rr == compiled::ReadResult::kEof   ? "died"
                                                            : "corrupt";
    impl_->cleanup_worker(rr == compiled::ReadResult::kTimeout ? 0 : 200);
    att.note = std::string("worker ") +
               (rr == compiled::ReadResult::kTimeout
                    ? "hung past the request deadline"
                : rr == compiled::ReadResult::kEof
                    ? "died mid-request"
                    : "sent a malformed frame");
    impl_->record_failure(what, &att.note);
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return att;
  }

  std::string f[8];
  compiled::split_fields(payload, sep, 8, f);
  if (f[0] != "RSP" || std::strtoull(f[1].c_str(), nullptr, 10) != id) {
    impl_->cleanup_worker(200);
    att.note = "protocol corruption (bad response frame)";
    impl_->record_failure("corrupt", &att.note);
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return att;
  }

  // The worker answered: its verdict is authoritative, success or compile
  // diagnostic alike. Service health bookkeeping resets either way.
  impl_->consecutive_failures = 0;
  impl_->next_spawn_at = {};
  att.serviced = true;
  att.result.ok = f[2] == "ok";
  att.result.timed_out = f[2] == "timeout";
  att.result.transient = f[4] == "1";
  att.result.attempts = std::atoi(f[5].c_str());
  att.result.seconds =
      static_cast<double>(std::strtoull(f[6].c_str(), nullptr, 10)) * 1e-9;
  if (!att.result.ok) {
    att.result.log = "compiler exit status " + f[3] + " (" + f[2] +
                     ", via compile service)\n" + f[7];
  }
  g_served.fetch_add(1, std::memory_order_relaxed);
  obs::counter_add(obs::Counter::kCompiledServed);
  return att;
}

CompileService::State CompileService::state() {
  State st;
  st.enabled = enabled();
  std::lock_guard lock(impl_->mu);
  st.running = impl_->pid > 0;
  st.breaker_open =
      impl_->breaker_open && Clock::now() < impl_->breaker_until;
  st.restarts = impl_->generation > 0 ? impl_->generation - 1 : 0;
  st.consecutive_failures = impl_->consecutive_failures;
  st.worker_pid = impl_->pid;
  st.pch = impl_->pch;
  return st;
}

void CompileService::shutdown() {
  std::lock_guard lock(impl_->mu);
  if (impl_->pid > 0) {
    flightrec::record(flightrec::EventKind::kCompiled, "stop",
                      static_cast<std::uint64_t>(impl_->pid));
  }
  impl_->cleanup_worker(500);
}

void CompileService::reset() {
  shutdown();
  std::lock_guard lock(impl_->mu);
  impl_->enabled_cache = -1;
  impl_->generation = 0;
  impl_->consecutive_failures = 0;
  impl_->next_spawn_at = {};
  impl_->breaker_open = false;
  impl_->breaker_until = {};
  g_breaker_open.store(0, std::memory_order_relaxed);
  g_restarts.store(0, std::memory_order_relaxed);
}

namespace compiled_state {

Snapshot snapshot() noexcept {
  Snapshot s;
  s.enabled = g_enabled.load(std::memory_order_relaxed);
  s.worker_pid = g_worker_pid.load(std::memory_order_relaxed);
  s.restarts = g_restarts.load(std::memory_order_relaxed);
  s.breaker_open = g_breaker_open.load(std::memory_order_relaxed);
  s.requests = g_requests.load(std::memory_order_relaxed);
  s.served = g_served.load(std::memory_order_relaxed);
  s.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return s;
}

}  // namespace compiled_state

}  // namespace pygb::jit
