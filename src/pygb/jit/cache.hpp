// pygb/jit/cache.hpp — disk-tier management for the Fig. 9 module cache.
//
// The disk cache is shared state: many processes (and many runs, across
// compiler upgrades and flag changes) read and write one directory. This
// header owns everything that makes that safe:
//
//   * the cache STAMP — a string identifying the cache schema, the
//     compiler, the compile flags, and the pygb version. It is hashed into
//     every module filename and embedded verbatim in every generated module
//     (the `pygb_module_stamp` symbol), so a stale directory or a 64-bit
//     key-hash collision can never silently return the wrong kernel:
//     load-time verification compares the embedded stamp+key against what
//     the requester expects.
//   * per-stem advisory FILE LOCKS (flock) so two *processes* racing on the
//     same cold key coalesce onto one g++ invocation (PR 1's in-flight
//     records handle threads within a process).
//   * QUARANTINE for modules that fail to load or fail verification: the
//     file is renamed to `<name>.bad` (kept for inspection, never retried)
//     and the caller recompiles.
//   * HYGIENE — size-capped LRU-by-mtime eviction (PYGB_CACHE_MAX_BYTES)
//     and startup removal of stale `.tmp.so` / `.log` litter left by
//     crashed compiles.
//
// Layout of a cache directory (see docs/CACHE.md):
//   pygb_<keyhash>_<stamphash>.cpp          generated translation unit
//   pygb_<keyhash>_<stamphash>.srcmap       attribution sidecar (JSON: key,
//                                           func, kernel line, #line file)
//   pygb_<keyhash>_<stamphash>.so           published module (atomic rename)
//   pygb_<keyhash>_<stamphash>.so.<pid>.tmp in-progress compile output
//   pygb_<keyhash>_<stamphash>.so.bad       quarantined corrupt module
//   pygb_<keyhash>_<stamphash>.lock         advisory flock file
//   pygb_<keyhash>_<stamphash>.so.log       diagnostics of a FAILED compile
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace pygb::jit {

/// Bumped whenever the generated-module ABI changes (KernelArgs layout,
/// stamp symbol format, filename scheme). v3: modules carry the
/// pygb_module_set_pool worker-pool injection export (gbtl/detail/pool.hpp).
/// v4: PoolApi v2 — governor checkpoint/mem_reserve/mem_release entries
/// (pygb/governor.hpp); v3 modules would reject the v2 table and silently
/// run sequential and ungoverned, so they are retired wholesale.
/// v5: crash attribution — modules export pygb_module_key/func/kernel_line,
/// kernel statements are #line-mapped onto a virtual DSL file, the entry
/// guard routes the kernel_crash fault site and flight notes through
/// PoolApi v3, and a `.srcmap` sidecar is published next to the source.
/// v6: backend axis — gbtl::Matrix grows a cached-transpose slot (ABI:
/// sizeof changed across the module boundary) and generated bodies open
/// with a baked gbtl::detail::BackendScope; pre-axis modules would run
/// the old container layout, so they are retired wholesale.
/// v7: direction-optimization amortization — gbtl::Matrix grows the
/// pull-interest counter (transpose_want_; sizeof changed again), so v6
/// modules see a stale container layout.
inline constexpr int kCacheSchemaVersion = 7;

/// The full environment stamp: schema version, compiler identity and
/// flags, pygb version. Computed once per (process, compiler command) and
/// cached. Example: "pygb-cache-v2|g++ (GCC) 13.2.0|-std=c++20 -O2 ...".
std::string cache_stamp();

/// The stamp a generated module must carry to satisfy `key`: the cache
/// stamp plus the full dispatch key (so hash collisions are caught even
/// though filenames only carry 64-bit hashes).
std::string module_stamp(const std::string& key);

/// Filename stem for `key` under the current stamp:
/// "pygb_<hex keyhash>_<hex stamphash>".
std::string module_stem(const std::string& key);

/// Name of the exported verification symbol in generated modules.
inline constexpr const char* kStampSymbol = "pygb_module_stamp";

/// Prefix baked into the stamp payload so verification can locate it by
/// scanning the module file's bytes BEFORE dlopen — an unverified module
/// must never get to run its initializers, and glibc caches dlopen'd
/// objects by path name, so a bad file must be rejected without loading.
inline constexpr const char* kStampMarker = "PYGB-STAMP:";

/// PYGB_CACHE_MAX_BYTES (0 = unlimited, the default).
std::uint64_t cache_max_bytes();

/// Rename a failing module to `<path>.bad` (best effort; falls back to
/// removal). Returns true if the file is no longer at `path`.
bool quarantine_module(const std::string& so_path);

/// Delete stale compile litter — `.tmp` outputs, `.log` diagnostics, and
/// `.bad` quarantines older than the hygiene horizon (default one hour,
/// overridable via PYGB_CACHE_HYGIENE_HOURS; young litter may belong to a
/// live compile in another process, and fresh quarantines are kept for
/// inspection). Returns the number of files removed. Called on registry
/// startup and whenever the cache directory changes.
std::size_t clean_cache_litter(const std::string& dir);

/// The litter age beyond which clean_cache_litter() reaps, from
/// PYGB_CACHE_HYGIENE_HOURS (default 1).
std::chrono::hours cache_hygiene_horizon();

/// Evict least-recently-touched modules until the directory's total size
/// is within `max_bytes`. Eviction takes the FULL stem family — the `.so`
/// plus every `<stem>.*` sidecar (`.cpp`, `.srcmap`, `.lock`, `.so.log`,
/// `.so.bad`, orphaned `.so.<pid>.tmp`) — so repeated eviction cycles
/// cannot strand unevictable litter under the cap. The newest module is
/// never evicted (the one just published must survive). Returns bytes
/// evicted. No-op when max_bytes == 0.
std::uint64_t enforce_cache_cap(const std::string& dir,
                                std::uint64_t max_bytes);

/// Aggregate numbers for `pygb_cli --cache-info`.
struct CacheInfo {
  std::uint64_t modules = 0;      ///< published .so files
  std::uint64_t total_bytes = 0;  ///< all files in the directory
  std::uint64_t quarantined = 0;  ///< .bad files
  std::uint64_t logs = 0;         ///< failed-compile .log files
};
CacheInfo cache_info(const std::string& dir);

/// PYGB_LOCK_TIMEOUT_MS — how long FileLock polls for the advisory lock
/// before giving up (default: the JIT compile deadline plus 10s, since a
/// healthy holder legitimately keeps it for one full compile; 0 = wait
/// forever, the legacy behaviour).
int lock_timeout_ms();

/// RAII advisory lock on `path` (flock; the file is created if absent and
/// left in place — flock metadata lives in the kernel, not the file).
///
/// Acquisition is BOUNDED: LOCK_EX|LOCK_NB in a backoff loop until
/// `timeout_ms` expires. A process that crashed while holding the lock
/// releases it automatically (flock dies with the fd), but a LIVE process
/// wedged mid-compile would otherwise block every peer forever — on
/// deadline the lock is simply not held and the caller proceeds with a
/// private, uncoalesced compile (correctness never depends on the lock;
/// only compile coalescing does). The same degradation applies when the
/// lock file cannot be opened at all (read-only cache dir).
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  FileLock(const std::string& path, int timeout_ms);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool held() const noexcept { return held_; }
  /// True when the lock was given up on at the deadline (as opposed to
  /// an unopenable lock file) — the caller may want to count this.
  bool timed_out() const noexcept { return timed_out_; }

 private:
  int fd_ = -1;
  bool held_ = false;
  bool timed_out_ = false;
};

}  // namespace pygb::jit
