// Build-time registrations: eWiseAdd / eWiseMult, matrix and vector forms.
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit::static_reg {

namespace {

template <typename CT, typename AT, typename BT, typename Bop, bool IsAdd,
          typename Acc, MaskKind MK>
void reg_ewise_mm_one(Registry& r) {
  OpRequest req;
  req.func = IsAdd ? func::kEWiseAddMM : func::kEWiseMultMM;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.b = dtype_of<BT>();
  req.mask = MK;
  req.binary_op = Bop::descriptor();
  req.accum = Acc::descriptor();
  r.register_static(
      req.key(),
      &run_ewise_mm<CT, AT, BT, Bop::template type, IsAdd, false, false, MK,
                    typename Acc::template type<CT>>);
}

template <typename CT, typename AT, typename BT, typename Bop, bool IsAdd,
          typename Acc, MaskKind MK>
void reg_ewise_vv_one(Registry& r) {
  OpRequest req;
  req.func = IsAdd ? func::kEWiseAddVV : func::kEWiseMultVV;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.b = dtype_of<BT>();
  req.mask = MK;
  req.binary_op = Bop::descriptor();
  req.accum = Acc::descriptor();
  r.register_static(
      req.key(),
      &run_ewise_vv<CT, AT, BT, Bop::template type, IsAdd, MK,
                    typename Acc::template type<CT>>);
}

template <typename T, typename Bop, typename Acc>
void reg_ewise_all_masks(Registry& r) {
  reg_ewise_mm_one<T, T, T, Bop, true, Acc, MaskKind::kNone>(r);
  reg_ewise_mm_one<T, T, T, Bop, true, Acc, MaskKind::kMatrix>(r);
  reg_ewise_mm_one<T, T, T, Bop, true, Acc, MaskKind::kMatrixComp>(r);
  reg_ewise_mm_one<T, T, T, Bop, false, Acc, MaskKind::kNone>(r);
  reg_ewise_mm_one<T, T, T, Bop, false, Acc, MaskKind::kMatrix>(r);
  reg_ewise_mm_one<T, T, T, Bop, false, Acc, MaskKind::kMatrixComp>(r);
  reg_ewise_vv_one<T, T, T, Bop, true, Acc, MaskKind::kNone>(r);
  reg_ewise_vv_one<T, T, T, Bop, true, Acc, MaskKind::kVector>(r);
  reg_ewise_vv_one<T, T, T, Bop, true, Acc, MaskKind::kVectorComp>(r);
  reg_ewise_vv_one<T, T, T, Bop, false, Acc, MaskKind::kNone>(r);
  reg_ewise_vv_one<T, T, T, Bop, false, Acc, MaskKind::kVector>(r);
  reg_ewise_vv_one<T, T, T, Bop, false, Acc, MaskKind::kVectorComp>(r);
}

template <typename T, typename Bop>
void reg_ewise_plain(Registry& r) {
  reg_ewise_mm_one<T, T, T, Bop, true, AccNone, MaskKind::kNone>(r);
  reg_ewise_mm_one<T, T, T, Bop, false, AccNone, MaskKind::kNone>(r);
  reg_ewise_vv_one<T, T, T, Bop, true, AccNone, MaskKind::kNone>(r);
  reg_ewise_vv_one<T, T, T, Bop, false, AccNone, MaskKind::kNone>(r);
}

}  // namespace

void register_ewise(Registry& r) {
  for_types(DtCore{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_ewise_all_masks<T, BopPlus, AccNone>(r);
    reg_ewise_all_masks<T, BopMinus, AccNone>(r);
    reg_ewise_all_masks<T, BopTimes, AccNone>(r);
    reg_ewise_all_masks<T, BopMin, AccNone>(r);
    reg_ewise_all_masks<T, BopMax, AccNone>(r);
    // Accumulating variants, unmasked.
    reg_ewise_plain<T, BopPlus>(r);  // idempotent re-register is harmless
  });
  for_types(DtWide{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_ewise_plain<T, BopPlus>(r);
    reg_ewise_plain<T, BopTimes>(r);
    reg_ewise_plain<T, BopMin>(r);
    reg_ewise_plain<T, BopLogicalOr>(r);
    reg_ewise_plain<T, BopLogicalAnd>(r);
  });
}

}  // namespace pygb::jit::static_reg
