// pygb/jit/compiler.hpp — the `g++ ... -o <mod>.so` stage of Fig. 9.
#pragma once

#include <string>

namespace pygb::jit {

struct CompileResult {
  bool ok = false;
  std::string log;       ///< compiler diagnostics on failure
  double seconds = 0.0;  ///< wall time of the compiler invocation(s)
  bool timed_out = false;  ///< killed at the PYGB_JIT_TIMEOUT_MS deadline
  /// Environmental failure (timeout, OOM, spawn failure, tmpdir full):
  /// the key is not doomed — the registry's circuit breaker treats these
  /// differently from a deterministic compile error.
  bool transient = false;
  int attempts = 0;  ///< child launches (transient failures are retried)
};

/// Compile `source_path` into a shared object at `output_path` against the
/// project's headers. The compiler binary comes from PYGB_CXX (default
/// "g++"; a multi-word value like "ccache g++" is split on whitespace);
/// flags mirror the library's own build (-std=c++20 -O2).
///
/// The invocation runs through the sandboxed subprocess runner (see
/// pygb/jit/subprocess.hpp): argv-based exec (no shell — paths with
/// spaces or quotes are safe), a wall-clock deadline with SIGTERM→SIGKILL
/// process-group escalation, child rlimits, captured stderr, and bounded
/// retry of transient failures. On failure the stderr capture is written
/// to `<output>.log` (with a "killed after Xms" trailer when the deadline
/// fired) and folded into `log`; on success no .log is left behind.
CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path);

/// True when a working C++ compiler is reachable. The probe is cached per
/// (compiler command, include dir), so changing PYGB_CXX mid-process (as
/// tests do) re-probes instead of returning a stale answer. The probe
/// itself is deadline-bounded — a HUNG compiler counts as unavailable
/// instead of wedging the first dispatch.
bool compiler_available();

/// The compiler command used (for diagnostics and bench output).
std::string compiler_command();

/// First line of `<compiler> --version` — the compiler identity baked
/// into the cache stamp (see pygb/jit/cache.hpp). Cached per command;
/// falls back to the command string when the probe fails.
std::string compiler_identity();

/// The exact flag string passed to the compiler for generated modules —
/// part of the cache stamp, since flag drift changes module ABI.
std::string compile_flags();

/// The include directory holding the project sources that generated
/// modules compile against (baked in at build time, overridable via
/// PYGB_INCLUDE_DIR for relocated installs).
std::string source_include_dir();

}  // namespace pygb::jit
