// pygb/jit/compiler.hpp — the `g++ ... -o <mod>.so` stage of Fig. 9.
#pragma once

#include <string>

namespace pygb::jit {

struct CompileResult {
  bool ok = false;
  std::string log;       ///< compiler diagnostics on failure
  double seconds = 0.0;  ///< wall time of the compiler invocation
};

/// Compile `source_path` into a shared object at `output_path` against the
/// project's headers. The compiler binary comes from PYGB_CXX (default
/// "g++" / "c++"); flags mirror the library's own build (-std=c++20 -O2).
/// The exit status is decoded with WIFEXITED/WIFSIGNALED so a shell
/// failure or a signal-killed compiler is reported accurately; the stderr
/// capture file (`<output>.log`) is removed on success and kept (and
/// folded into `log`) on failure.
CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path);

/// True when a working C++ compiler is reachable. The probe is cached per
/// (compiler command, include dir), so changing PYGB_CXX mid-process (as
/// tests do) re-probes instead of returning a stale answer.
bool compiler_available();

/// The compiler command used (for diagnostics and bench output).
std::string compiler_command();

/// First line of `<compiler> --version` — the compiler identity baked
/// into the cache stamp (see pygb/jit/cache.hpp). Cached per command;
/// falls back to the command string when the probe fails.
std::string compiler_identity();

/// The exact flag string passed to the compiler for generated modules —
/// part of the cache stamp, since flag drift changes module ABI.
std::string compile_flags();

/// The include directory holding the project sources that generated
/// modules compile against (baked in at build time, overridable via
/// PYGB_INCLUDE_DIR for relocated installs).
std::string source_include_dir();

}  // namespace pygb::jit
