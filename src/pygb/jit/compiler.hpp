// pygb/jit/compiler.hpp — the `g++ ... -o <mod>.so` stage of Fig. 9.
#pragma once

#include <string>

namespace pygb::jit {

struct CompileResult {
  bool ok = false;
  std::string log;       ///< compiler diagnostics on failure
  double seconds = 0.0;  ///< wall time of the compiler invocation
};

/// Compile `source_path` into a shared object at `output_path` against the
/// project's headers. The compiler binary comes from PYGB_CXX (default
/// "g++" / "c++"); flags mirror the library's own build (-std=c++20 -O2).
CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path);

/// True when a working C++ compiler is reachable (cached after first probe).
bool compiler_available();

/// The compiler command used (for diagnostics and bench output).
std::string compiler_command();

/// The include directory holding the project sources that generated
/// modules compile against (baked in at build time, overridable via
/// PYGB_INCLUDE_DIR for relocated installs).
std::string source_include_dir();

}  // namespace pygb::jit
