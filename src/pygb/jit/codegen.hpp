// pygb/jit/codegen.hpp — the source-generation stage of Fig. 9: turn an
// OpRequest into a translation unit that instantiates exactly one glue
// template with concrete types and exports it as `extern "C" pygb_kernel`.
#pragma once

#include <string>

#include "pygb/jit/module_key.hpp"

#include <cstdint>

namespace pygb::jit {

/// Where the generated kernel statement lives — the codegen half of the
/// crash-attribution pipeline (docs/OBSERVABILITY.md). The registry
/// persists this next to the cached .so as a `.srcmap` JSON sidecar, and
/// the same facts are compiled INTO the module as exported symbols
/// (pygb_module_key / pygb_module_func / pygb_module_kernel_line) so a
/// disk-cached module carries its own provenance.
struct SourceInfo {
  std::string func;        ///< DSL func name ("mxm", "fused_chain", ...)
  std::string key;         ///< full dispatch key
  std::uint64_t key_hash = 0;  ///< FNV-1a of the key
  unsigned kernel_line = 0;    ///< physical line of the kernel statement
  std::string dsl_file;    ///< #line virtual file "pygb:dsl:<func>:<hash>"
};

/// Generate the complete C++ source for the request's kernel module.
/// Throws std::invalid_argument for requests no backend could satisfy
/// (unknown func names, missing operators).
///
/// When `stamp` is non-empty the module additionally exports it as the
/// `pygb_module_stamp` string, which load_kernel() verifies against the
/// requester's expectation (see pygb/jit/cache.hpp) — the guard against
/// hash collisions and environment drift in the shared disk cache.
///
/// The kernel statement is wrapped in a `#line` directive mapping it to a
/// virtual DSL file (D2X-style: debuggers and sanitizer reports then name
/// the originating DSL expression instead of an anonymous temp file), and
/// `info`, when non-null, receives the mapping facts for the sidecar.
std::string generate_source(const OpRequest& req,
                            const std::string& stamp = {},
                            SourceInfo* info = nullptr);

}  // namespace pygb::jit
