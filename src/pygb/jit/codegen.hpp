// pygb/jit/codegen.hpp — the source-generation stage of Fig. 9: turn an
// OpRequest into a translation unit that instantiates exactly one glue
// template with concrete types and exports it as `extern "C" pygb_kernel`.
#pragma once

#include <string>

#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

/// Generate the complete C++ source for the request's kernel module.
/// Throws std::invalid_argument for requests no backend could satisfy
/// (unknown func names, missing operators).
///
/// When `stamp` is non-empty the module additionally exports it as the
/// `pygb_module_stamp` string, which load_kernel() verifies against the
/// requester's expectation (see pygb/jit/cache.hpp) — the guard against
/// hash collisions and environment drift in the shared disk cache.
std::string generate_source(const OpRequest& req,
                            const std::string& stamp = {});

}  // namespace pygb::jit
