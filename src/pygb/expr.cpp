#include "pygb/expr.hpp"

#include <stdexcept>

#include "pygb/eval.hpp"
#include "pygb/plan.hpp"

namespace pygb {

namespace detail {

DType ExprNode::result_dtype() const {
  switch (kind) {
    case Kind::kMxM:
    case Kind::kEWiseAddMM:
    case Kind::kEWiseMultMM:
      return promote(ma->dtype(), mb->dtype());
    case Kind::kMxV:
      return promote(ma->dtype(), vb->dtype());
    case Kind::kVxM:
      return promote(va->dtype(), mb->dtype());
    case Kind::kEWiseAddVV:
    case Kind::kEWiseMultVV:
      return promote(va->dtype(), vb->dtype());
    case Kind::kApplyM:
    case Kind::kMatrixRef:
    case Kind::kTransposeM:
    case Kind::kReduceMV:
      return ma->dtype();
    case Kind::kApplyV:
    case Kind::kVectorRef:
      return va->dtype();
  }
  throw std::logic_error("pygb: corrupt expression node kind");
}

gbtl::IndexType ExprNode::result_nrows() const {
  auto mat_rows = [](const Matrix& m, bool t) {
    return t ? m.ncols() : m.nrows();
  };
  switch (kind) {
    case Kind::kMxM:
      return mat_rows(*ma, a_transposed);
    case Kind::kEWiseAddMM:
    case Kind::kEWiseMultMM:
    case Kind::kMatrixRef:
      return mat_rows(*ma, a_transposed);
    case Kind::kApplyM:
      return mat_rows(*ma, a_transposed);
    case Kind::kTransposeM:
      return a_transposed ? ma->nrows() : ma->ncols();
    case Kind::kMxV:
    case Kind::kReduceMV:
      return mat_rows(*ma, a_transposed);
    case Kind::kVxM:
      return b_transposed ? mb->nrows() : mb->ncols();
    case Kind::kEWiseAddVV:
    case Kind::kEWiseMultVV:
    case Kind::kApplyV:
    case Kind::kVectorRef:
      return va->size();
  }
  throw std::logic_error("pygb: corrupt expression node kind");
}

gbtl::IndexType ExprNode::result_ncols() const {
  auto mat_cols = [](const Matrix& m, bool t) {
    return t ? m.nrows() : m.ncols();
  };
  switch (kind) {
    case Kind::kMxM:
      return mat_cols(*mb, b_transposed);
    case Kind::kEWiseAddMM:
    case Kind::kEWiseMultMM:
    case Kind::kMatrixRef:
    case Kind::kApplyM:
      return mat_cols(*ma, a_transposed);
    case Kind::kTransposeM:
      return a_transposed ? ma->ncols() : ma->nrows();
    default:
      throw std::logic_error("pygb: result_ncols on a vector expression");
  }
}

namespace {

std::shared_ptr<ExprNode> make_node(ExprNode&& node) {
  return std::make_shared<ExprNode>(std::move(node));
}

}  // namespace

}  // namespace detail

using detail::ExprNode;

// ---------------------------------------------------------------------------
// matmul — captures the context semiring (Fig. 9 "expression construction").
// ---------------------------------------------------------------------------

namespace {

MatrixExpr make_mxm(const Matrix& a, bool at, const Matrix& b, bool bt) {
  ExprNode n{ExprNode::Kind::kMxM};
  n.ma = a;
  n.mb = b;
  n.a_transposed = at;
  n.b_transposed = bt;
  n.semiring = current_semiring();
  return MatrixExpr(detail::make_node(std::move(n)));
}

VectorExpr make_mxv(const Matrix& a, bool at, const Vector& u) {
  ExprNode n{ExprNode::Kind::kMxV};
  n.ma = a;
  n.vb = u;
  n.a_transposed = at;
  n.semiring = current_semiring();
  return VectorExpr(detail::make_node(std::move(n)));
}

VectorExpr make_vxm(const Vector& u, const Matrix& a, bool bt) {
  ExprNode n{ExprNode::Kind::kVxM};
  n.va = u;
  n.mb = a;
  n.b_transposed = bt;
  n.semiring = current_semiring();
  return VectorExpr(detail::make_node(std::move(n)));
}

MatrixExpr make_ewise_mm(const Matrix& a, const Matrix& b, bool is_add) {
  ExprNode n{is_add ? ExprNode::Kind::kEWiseAddMM
                    : ExprNode::Kind::kEWiseMultMM};
  n.ma = a;
  n.mb = b;
  n.binary_op = is_add ? current_add_op() : current_mult_op();
  return MatrixExpr(detail::make_node(std::move(n)));
}

VectorExpr make_ewise_vv(const Vector& u, const Vector& v, bool is_add) {
  ExprNode n{is_add ? ExprNode::Kind::kEWiseAddVV
                    : ExprNode::Kind::kEWiseMultVV};
  n.va = u;
  n.vb = v;
  n.binary_op = is_add ? current_add_op() : current_mult_op();
  return VectorExpr(detail::make_node(std::move(n)));
}

}  // namespace

MatrixExpr matmul(const Matrix& a, const Matrix& b) {
  return make_mxm(a, false, b, false);
}
MatrixExpr matmul(const TransposedMatrix& a, const Matrix& b) {
  return make_mxm(a.base(), true, b, false);
}
MatrixExpr matmul(const Matrix& a, const TransposedMatrix& b) {
  return make_mxm(a, false, b.base(), true);
}
MatrixExpr matmul(const TransposedMatrix& a, const TransposedMatrix& b) {
  return make_mxm(a.base(), true, b.base(), true);
}

VectorExpr matmul(const Matrix& a, const Vector& u) {
  return make_mxv(a, false, u);
}
VectorExpr matmul(const TransposedMatrix& a, const Vector& u) {
  return make_mxv(a.base(), true, u);
}
VectorExpr matmul(const Vector& u, const Matrix& a) {
  return make_vxm(u, a, false);
}
VectorExpr matmul(const Vector& u, const TransposedMatrix& a) {
  return make_vxm(u, a.base(), true);
}

MatrixExpr operator+(const Matrix& a, const Matrix& b) {
  return make_ewise_mm(a, b, true);
}
VectorExpr operator+(const Vector& u, const Vector& v) {
  return make_ewise_vv(u, v, true);
}
MatrixExpr operator*(const Matrix& a, const Matrix& b) {
  return make_ewise_mm(a, b, false);
}
VectorExpr operator*(const Vector& u, const Vector& v) {
  return make_ewise_vv(u, v, false);
}

MatrixExpr apply(const Matrix& a) { return apply(a, current_unary_op()); }
MatrixExpr apply(const Matrix& a, const UnaryOp& op) {
  ExprNode n{ExprNode::Kind::kApplyM};
  n.ma = a;
  n.unary_op = op;
  return MatrixExpr(detail::make_node(std::move(n)));
}
VectorExpr apply(const Vector& u) { return apply(u, current_unary_op()); }
VectorExpr apply(const Vector& u, const UnaryOp& op) {
  ExprNode n{ExprNode::Kind::kApplyV};
  n.va = u;
  n.unary_op = op;
  return VectorExpr(detail::make_node(std::move(n)));
}

Scalar reduce(const Matrix& a) { return reduce(a, current_monoid()); }
Scalar reduce(const Matrix& a, const Monoid& monoid) {
  return detail::reduce_scalar(a, monoid);
}
Scalar reduce(const Vector& u) { return reduce(u, current_monoid()); }
Scalar reduce(const Vector& u, const Monoid& monoid) {
  return detail::reduce_scalar(u, monoid);
}

VectorExpr reduce_rows(const Matrix& a) {
  return reduce_rows(a, current_monoid());
}
VectorExpr reduce_rows(const Matrix& a, const Monoid& monoid) {
  ExprNode n{ExprNode::Kind::kReduceMV};
  n.ma = a;
  n.monoid = monoid;
  return VectorExpr(detail::make_node(std::move(n)));
}

MatrixExpr ewise_add(const Matrix& a, const Matrix& b,
                     const UserBinaryOp& op) {
  ExprNode n{ExprNode::Kind::kEWiseAddMM};
  n.ma = a;
  n.mb = b;
  n.user_binary = op;
  return MatrixExpr(detail::make_node(std::move(n)));
}

MatrixExpr ewise_mult(const Matrix& a, const Matrix& b,
                      const UserBinaryOp& op) {
  ExprNode n{ExprNode::Kind::kEWiseMultMM};
  n.ma = a;
  n.mb = b;
  n.user_binary = op;
  return MatrixExpr(detail::make_node(std::move(n)));
}

VectorExpr ewise_add(const Vector& u, const Vector& v,
                     const UserBinaryOp& op) {
  ExprNode n{ExprNode::Kind::kEWiseAddVV};
  n.va = u;
  n.vb = v;
  n.user_binary = op;
  return VectorExpr(detail::make_node(std::move(n)));
}

VectorExpr ewise_mult(const Vector& u, const Vector& v,
                      const UserBinaryOp& op) {
  ExprNode n{ExprNode::Kind::kEWiseMultVV};
  n.va = u;
  n.vb = v;
  n.user_binary = op;
  return VectorExpr(detail::make_node(std::move(n)));
}

MatrixExpr apply(const Matrix& a, const UserUnaryOp& op) {
  ExprNode n{ExprNode::Kind::kApplyM};
  n.ma = a;
  n.user_unary = op;
  return MatrixExpr(detail::make_node(std::move(n)));
}

VectorExpr apply(const Vector& u, const UserUnaryOp& op) {
  ExprNode n{ExprNode::Kind::kApplyV};
  n.va = u;
  n.user_unary = op;
  return VectorExpr(detail::make_node(std::move(n)));
}

MatrixExpr transposed(const Matrix& a) {
  ExprNode n{ExprNode::Kind::kTransposeM};
  n.ma = a;
  return MatrixExpr(detail::make_node(std::move(n)));
}
MatrixExpr transposed(const TransposedMatrix& a) {
  ExprNode n{ExprNode::Kind::kTransposeM};
  n.ma = a.base();
  n.a_transposed = true;  // transpose of a transpose: plain copy
  return MatrixExpr(detail::make_node(std::move(n)));
}

// ---------------------------------------------------------------------------
// Terminal evaluation.
// ---------------------------------------------------------------------------

Matrix MatrixExpr::eval() const {
  Matrix out(node_->result_nrows(), node_->result_ncols(),
             node_->result_dtype());
  // Inside a lazy scope the evaluation itself is deferred: the fresh
  // container becomes a DAG intermediate the planner may fuse through (or
  // eliminate entirely when it is overwritten before being read).
  if (fusion::detail::try_defer(out, MatrixMaskArg{}, std::nullopt, false,
                                node_)) {
    return out;
  }
  detail::eval_into(out, MatrixMaskArg{}, std::nullopt, false, *node_);
  return out;
}

Vector VectorExpr::eval() const {
  Vector out(node_->result_nrows(), node_->result_dtype());
  if (fusion::detail::try_defer(out, VectorMaskArg{}, std::nullopt, false,
                                node_)) {
    return out;
  }
  detail::eval_into(out, VectorMaskArg{}, std::nullopt, false, *node_);
  return out;
}

Matrix& Matrix::operator=(const MatrixExpr& expr) {
  *this = expr.eval();  // Python rebinding: the handle points at new data
  return *this;
}

Vector& Vector::operator=(const VectorExpr& expr) {
  *this = expr.eval();
  return *this;
}

}  // namespace pygb
