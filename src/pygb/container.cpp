#include "pygb/container.hpp"

#include <stdexcept>

#include "io/coo_text.hpp"
#include "io/matrix_market.hpp"
#include "pygb/eval.hpp"
#include "pygb/plan.hpp"

// Lazy-DAG discipline (docs/FUSION.md): every element-level reader is a
// materialization point (fusion::detail::sync_read flushes pending deferred
// ops that involve this container), and every element-level mutator is a
// barrier plus a snapshot point (fusion::detail::sync_write also gives any
// live deferred expression reading this container a private copy of the
// pre-mutation values). Dimension getters are exempt: deferred ops never
// resize a container.

namespace pygb {

namespace {

template <template <typename> class ContainerT, typename... Args>
std::shared_ptr<void> make_impl(DType dtype, Args&&... args) {
  return visit_dtype(dtype, [&](auto tag) -> std::shared_ptr<void> {
    using T = typename decltype(tag)::type;
    return std::shared_ptr<void>(
        new ContainerT<T>(std::forward<Args>(args)...),
        [](void* p) { delete static_cast<ContainerT<T>*>(p); });
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

Matrix::Matrix(gbtl::IndexType nrows, gbtl::IndexType ncols, DType dtype)
    : dtype_(dtype), impl_(make_impl<gbtl::Matrix>(dtype, nrows, ncols)) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> dense,
               DType dtype)
    : Matrix(dense.size(), dense.size() ? dense.begin()->size() : 0, dtype) {
  gbtl::IndexType i = 0;
  for (const auto& row : dense) {
    if (row.size() != ncols()) {
      throw gbtl::DimensionException("ragged dense init data");
    }
    gbtl::IndexType j = 0;
    for (double v : row) {
      if (v != 0.0) set(i, j, Scalar(v, dtype));
      ++j;
    }
    ++i;
  }
}

Matrix Matrix::from_coo(const io::Coo& coo, DType dtype) {
  Matrix m(coo.nrows, coo.ncols, dtype);
  visit_dtype(dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    std::vector<T> cast(coo.vals.begin(), coo.vals.end());
    m.typed<T>().build(coo.rows, coo.cols, cast);
  });
  return m;
}

Matrix Matrix::from_edge_list(const gen::EdgeList& el, DType dtype) {
  Matrix m(el.num_vertices, el.num_vertices, dtype);
  visit_dtype(dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    m.typed<T>() = gen::to_adjacency<T>(el);
  });
  return m;
}

Matrix Matrix::from_file(const std::string& path, DType dtype) {
  const bool is_mm = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".mtx") == 0;
  return from_coo(is_mm ? io::read_matrix_market(path)
                        : io::read_coo_text(path),
                  dtype);
}

Matrix Matrix::from_dense(const std::vector<std::vector<double>>& dense,
                          DType dtype) {
  if (dense.empty() || dense.front().empty()) {
    throw gbtl::InvalidValueException("dense data must be non-empty");
  }
  Matrix m(dense.size(), dense.front().size(), dtype);
  for (gbtl::IndexType i = 0; i < dense.size(); ++i) {
    if (dense[i].size() != m.ncols()) {
      throw gbtl::DimensionException("ragged dense data");
    }
    for (gbtl::IndexType j = 0; j < dense[i].size(); ++j) {
      if (dense[i][j] != 0.0) m.set(i, j, Scalar(dense[i][j], dtype));
    }
  }
  return m;
}

void Matrix::check_dtype(DType dt) const {
  if (!defined()) {
    throw std::logic_error("pygb: operation on an undefined Matrix handle");
  }
  if (dt != dtype_) {
    throw std::logic_error(
        std::string("pygb: dtype mismatch: container holds ") +
        display_name(dtype_) + ", requested " + display_name(dt));
  }
}

gbtl::IndexType Matrix::nrows() const {
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().nrows();
  });
}

gbtl::IndexType Matrix::ncols() const {
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().ncols();
  });
}

std::size_t Matrix::nvals() const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().nvals();
  });
}

bool Matrix::has_element(gbtl::IndexType i, gbtl::IndexType j) const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().hasElement(i, j);
  });
}

Scalar Matrix::get_element(gbtl::IndexType i, gbtl::IndexType j) const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return Scalar(typed<T>().extractElement(i, j));
  });
}

double Matrix::get(gbtl::IndexType i, gbtl::IndexType j) const {
  return get_element(i, j).to_double();
}

void Matrix::set(gbtl::IndexType i, gbtl::IndexType j, Scalar v) {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().setElement(i, j, v.as<T>());
  });
}

void Matrix::remove_element(gbtl::IndexType i, gbtl::IndexType j) {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().removeElement(i, j);
  });
}

void Matrix::clear() {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().clear();
  });
}

Matrix Matrix::dup() const {
  fusion::detail::sync_read(raw());
  Matrix out(nrows(), ncols(), dtype_);
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    out.typed<T>() = typed<T>();
  });
  return out;
}

Matrix Matrix::astype(DType dtype) const {
  fusion::detail::sync_read(raw());
  if (dtype == dtype_) return dup();
  Matrix out(nrows(), ncols(), dtype);
  visit_dtype(dtype_, [&](auto src_tag) {
    using S = typename decltype(src_tag)::type;
    const auto& src = typed<S>();
    visit_dtype(dtype, [&](auto dst_tag) {
      using D = typename decltype(dst_tag)::type;
      auto& dst = out.typed<D>();
      for (gbtl::IndexType i = 0; i < src.nrows(); ++i) {
        typename gbtl::Matrix<D>::Row row;
        const auto& r = src.row(i);
        row.reserve(r.size());
        for (const auto& [j, v] : r) row.emplace_back(j, static_cast<D>(v));
        dst.setRow(i, std::move(row));
      }
    });
  });
  return out;
}

io::Coo Matrix::to_coo() const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return io::from_matrix(typed<T>());
  });
}

bool Matrix::equals(const Matrix& other) const {
  if (!defined() || !other.defined()) return defined() == other.defined();
  fusion::detail::sync_read(raw());
  fusion::detail::sync_read(other.raw());
  if (dtype_ != other.dtype_) return false;
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>() == other.typed<T>();
  });
}

TransposedMatrix Matrix::T() const { return TransposedMatrix(*this); }

ComplementedMatrix Matrix::operator~() const {
  return ComplementedMatrix(*this);
}

MaskedMatrix Matrix::operator[](const Matrix& mask) {
  return MaskedMatrix(*this,
                      {MatrixMaskArg::Kind::kPlain,
                       std::make_shared<const Matrix>(mask)});
}

MaskedMatrix Matrix::operator[](const ComplementedMatrix& mask) {
  return MaskedMatrix(*this,
                      {MatrixMaskArg::Kind::kComp,
                       std::make_shared<const Matrix>(mask.base())});
}

MaskedMatrix Matrix::operator[](NoneType) {
  return MaskedMatrix(*this, {});
}

SubMatrixRef Matrix::operator()(const Slice& rows, const Slice& cols) const {
  return SubMatrixRef(*this, {}, rows, cols);
}

SubMatrixRef Matrix::operator()(gbtl::IndexArray rows,
                                gbtl::IndexArray cols) const {
  return SubMatrixRef(*this, {}, std::move(rows), std::move(cols));
}

// ---------------------------------------------------------------------------
// Vector
// ---------------------------------------------------------------------------

Vector::Vector(gbtl::IndexType size, DType dtype)
    : dtype_(dtype), impl_(make_impl<gbtl::Vector>(dtype, size)) {}

Vector::Vector(std::initializer_list<double> dense, DType dtype)
    : Vector(dense.size(), dtype) {
  gbtl::IndexType i = 0;
  for (double v : dense) {
    if (v != 0.0) set(i, Scalar(v, dtype));
    ++i;
  }
}

Vector Vector::from_dense(const std::vector<double>& dense, DType dtype) {
  Vector out(dense.size(), dtype);
  for (gbtl::IndexType i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) out.set(i, Scalar(dense[i], dtype));
  }
  return out;
}

void Vector::check_dtype(DType dt) const {
  if (!defined()) {
    throw std::logic_error("pygb: operation on an undefined Vector handle");
  }
  if (dt != dtype_) {
    throw std::logic_error(
        std::string("pygb: dtype mismatch: container holds ") +
        display_name(dtype_) + ", requested " + display_name(dt));
  }
}

gbtl::IndexType Vector::size() const {
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().size();
  });
}

std::size_t Vector::nvals() const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().nvals();
  });
}

bool Vector::has_element(gbtl::IndexType i) const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>().hasElement(i);
  });
}

Scalar Vector::get_element(gbtl::IndexType i) const {
  fusion::detail::sync_read(raw());
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return Scalar(typed<T>().extractElement(i));
  });
}

double Vector::get(gbtl::IndexType i) const {
  return get_element(i).to_double();
}

void Vector::set(gbtl::IndexType i, Scalar v) {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().setElement(i, v.as<T>());
  });
}

void Vector::remove_element(gbtl::IndexType i) {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().removeElement(i);
  });
}

void Vector::clear() {
  fusion::detail::sync_write(raw());
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    typed<T>().clear();
  });
}

Vector Vector::dup() const {
  fusion::detail::sync_read(raw());
  Vector out(size(), dtype_);
  visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    out.typed<T>() = typed<T>();
  });
  return out;
}

Vector Vector::astype(DType dtype) const {
  fusion::detail::sync_read(raw());
  if (dtype == dtype_) return dup();
  Vector out(size(), dtype);
  visit_dtype(dtype_, [&](auto src_tag) {
    using S = typename decltype(src_tag)::type;
    const auto& src = typed<S>();
    visit_dtype(dtype, [&](auto dst_tag) {
      using D = typename decltype(dst_tag)::type;
      auto& dst = out.typed<D>();
      for (gbtl::IndexType i = 0; i < src.size(); ++i) {
        if (src.has_unchecked(i)) {
          dst.set_unchecked(i, static_cast<D>(src.value_unchecked(i)));
        }
      }
    });
  });
  return out;
}

bool Vector::equals(const Vector& other) const {
  if (!defined() || !other.defined()) return defined() == other.defined();
  fusion::detail::sync_read(raw());
  fusion::detail::sync_read(other.raw());
  if (dtype_ != other.dtype_) return false;
  return visit_dtype(dtype_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return typed<T>() == other.typed<T>();
  });
}

ComplementedVector Vector::operator~() const {
  return ComplementedVector(*this);
}

MaskedVector Vector::operator[](const Vector& mask) {
  return MaskedVector(*this,
                      {VectorMaskArg::Kind::kPlain,
                       std::make_shared<const Vector>(mask)});
}

MaskedVector Vector::operator[](const ComplementedVector& mask) {
  return MaskedVector(*this,
                      {VectorMaskArg::Kind::kComp,
                       std::make_shared<const Vector>(mask.base())});
}

MaskedVector Vector::operator[](NoneType) {
  return MaskedVector(*this, {});
}

SubVectorRef Vector::operator[](const Slice& idx) const {
  return SubVectorRef(*this, {}, idx);
}

SubVectorRef Vector::operator[](gbtl::IndexArray idx) const {
  return SubVectorRef(*this, {}, std::move(idx));
}

}  // namespace pygb
