// pygb/container.hpp — the DSL's runtime-typed Matrix and Vector handles
// plus the proxy objects behind PyGB's bracket syntax.
//
// A pygb::Matrix is a shared handle (Python reference semantics: copying a
// handle aliases the same data; `dup()` deep-copies) around a concrete
// gbtl::Matrix<T> whose T is chosen at run time by the dtype tag — the
// NumPy-dtype mechanism of §V. Operations on handles build deferred
// expression objects (expr.hpp) that are evaluated through the dispatch/JIT
// layer when assigned into a target.
//
// Surface syntax mapping (C++ has no `@`; matmul() stands in):
//
//   PyGB                          this library
//   ------------------------      ------------------------------------
//   C[M] = A @ B                  C[M] = matmul(A, B)
//   frontier[~levels] = ...       frontier[~levels] = ...
//   C[None] = A + B               C[None] = A + B
//   path[None] += graph.T @ path  path[None] += matmul(graph.T(), path)
//   B[L] = L @ L.T                B[L] = matmul(L, L.T())
//   page_rank[:] = 1.0 / n        page_rank[Slice::all()] = 1.0 / n
//   C[2:4, 2:4] = A @ B           C(Slice(2,4), Slice(2,4)) = matmul(A, B)
//   with gb.Replace:              With ctx(Replace);
#pragma once

#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "gbtl/matrix.hpp"
#include "gbtl/vector.hpp"
#include "generators/edge_list.hpp"
#include "io/coo.hpp"
#include "pygb/context.hpp"
#include "pygb/dtype.hpp"
#include "pygb/slicing.hpp"

namespace pygb {

class Matrix;
class Vector;
class MatrixExpr;
class VectorExpr;
class MaskedMatrix;
class MaskedVector;
class SubMatrixRef;
class SubVectorRef;

/// PyGB's `None` mask argument (GBTL NoMask): C[None] = ... assigns through
/// every position while keeping the target container's identity.
struct NoneType {};
inline constexpr NoneType None{};

/// ~M — a complemented matrix mask (definition after Matrix).
class ComplementedMatrix;
/// ~m — a complemented vector mask.
class ComplementedVector;
/// A.T() — a transposed operand marker used inside expressions.
class TransposedMatrix;

/// Resolved mask argument attached to an operation target.
struct MatrixMaskArg {
  enum class Kind : std::uint8_t { kNone, kPlain, kComp };
  Kind kind = Kind::kNone;
  std::shared_ptr<const Matrix> m;  ///< set unless kNone
};
struct VectorMaskArg {
  enum class Kind : std::uint8_t { kNone, kPlain, kComp };
  Kind kind = Kind::kNone;
  std::shared_ptr<const Vector> m;
};

// ---------------------------------------------------------------------------

class Matrix {
 public:
  /// Null handle (undefined matrix); most operations require defined().
  Matrix() = default;

  /// Empty nrows x ncols matrix of the given dtype (defaults to FP64, the
  /// Python-float fallback the paper describes).
  Matrix(gbtl::IndexType nrows, gbtl::IndexType ncols,
         DType dtype = DType::kFP64);

  /// Dense 2-D data (Fig. 3a); zeros are not stored.
  Matrix(std::initializer_list<std::initializer_list<double>> dense,
         DType dtype = DType::kFP64);

  /// Coordinate data (Fig. 3a): Matrix((vals, (rows, cols)), shape=...).
  /// The dtype defaults to the C++ type of the value vector.
  template <typename T>
    requires std::is_arithmetic_v<T>
  Matrix(const std::vector<T>& vals, const gbtl::IndexArray& rows,
         const gbtl::IndexArray& cols, gbtl::IndexType nrows,
         gbtl::IndexType ncols)
      : Matrix(nrows, ncols, dtype_of<T>()) {
    build_from(rows, cols, vals);
  }

  /// Construction from other libraries' containers (Fig. 3b analogs).
  static Matrix from_coo(const io::Coo& coo, DType dtype = DType::kFP64);
  static Matrix from_edge_list(const gen::EdgeList& el,
                               DType dtype = DType::kFP64);
  static Matrix from_dense(const std::vector<std::vector<double>>& dense,
                           DType dtype = DType::kFP64);

  /// §VIII future work, implemented: load a matrix straight from disk
  /// through the native reader ("wrapping a C++ function to directly load
  /// a matrix instead of first loading into Python lists would be
  /// trivial"). Dispatches on extension: .mtx → Matrix Market, anything
  /// else → triplet text.
  static Matrix from_file(const std::string& path,
                          DType dtype = DType::kFP64);

  /// §VIII future work, implemented: adopt an existing native container
  /// without copying its data (the array-buffer-protocol analog — the DSL
  /// handle takes ownership of the moved-in GBTL matrix).
  template <typename T>
  static Matrix adopt(gbtl::Matrix<T>&& native) {
    Matrix m;
    m.dtype_ = dtype_of<T>();
    m.impl_ = std::shared_ptr<void>(
        new gbtl::Matrix<T>(std::move(native)),
        [](void* p) { delete static_cast<gbtl::Matrix<T>*>(p); });
    return m;
  }

  bool defined() const noexcept { return impl_ != nullptr; }
  DType dtype() const { return dtype_; }
  gbtl::IndexType nrows() const;
  gbtl::IndexType ncols() const;
  std::size_t nvals() const;
  std::pair<gbtl::IndexType, gbtl::IndexType> shape() const {
    return {nrows(), ncols()};
  }

  bool has_element(gbtl::IndexType i, gbtl::IndexType j) const;
  /// Stored value at (i, j) converted to double; throws if absent.
  double get(gbtl::IndexType i, gbtl::IndexType j) const;
  Scalar get_element(gbtl::IndexType i, gbtl::IndexType j) const;
  void set(gbtl::IndexType i, gbtl::IndexType j, Scalar v);
  void set(gbtl::IndexType i, gbtl::IndexType j, double v) {
    set(i, j, Scalar(v, dtype_));
  }
  void remove_element(gbtl::IndexType i, gbtl::IndexType j);
  void clear();

  /// Deep copy (Python's dup/copy).
  Matrix dup() const;
  /// Deep copy cast to another dtype.
  Matrix astype(DType dtype) const;
  /// Export back to coordinate staging (Fig. 11's extract phase).
  io::Coo to_coo() const;

  /// True when both handles alias the same underlying container.
  bool same_object(const Matrix& other) const {
    return impl_ == other.impl_;
  }
  /// Structural + value equality (after dtype comparison).
  bool equals(const Matrix& other) const;

  /// Typed access to the underlying GBTL container (checked).
  template <typename T>
  gbtl::Matrix<T>& typed() {
    check_dtype(dtype_of<T>());
    return *static_cast<gbtl::Matrix<T>*>(impl_.get());
  }
  template <typename T>
  const gbtl::Matrix<T>& typed() const {
    check_dtype(dtype_of<T>());
    return *static_cast<const gbtl::Matrix<T>*>(impl_.get());
  }
  void* raw() const { return impl_.get(); }

  // --- DSL surface ----------------------------------------------------------

  /// A.T — transpose marker for use inside expressions.
  TransposedMatrix T() const;
  /// ~M — complemented mask.
  ComplementedMatrix operator~() const;

  /// Masked assignment targets: C[M], C[~M], C[None].
  MaskedMatrix operator[](const Matrix& mask);
  MaskedMatrix operator[](const ComplementedMatrix& mask);
  MaskedMatrix operator[](NoneType);

  /// Indexed (sub-matrix) target / extract source: C(rows, cols).
  SubMatrixRef operator()(const Slice& rows, const Slice& cols) const;
  SubMatrixRef operator()(gbtl::IndexArray rows, gbtl::IndexArray cols) const;

  /// Python rebinding `C = A @ B`: the handle is repointed at a fresh
  /// container holding the expression's value (the paper's discussion of
  /// C = A @ B vs C[None] = A @ B).
  Matrix& operator=(const MatrixExpr& expr);

 private:
  friend class MatrixExpr;
  void check_dtype(DType dt) const;
  template <typename VT>
  void build_from(const gbtl::IndexArray& rows, const gbtl::IndexArray& cols,
                  const std::vector<VT>& vals);

  DType dtype_ = DType::kFP64;
  std::shared_ptr<void> impl_;
};

class Vector {
 public:
  Vector() = default;
  explicit Vector(gbtl::IndexType size, DType dtype = DType::kFP64);
  Vector(std::initializer_list<double> dense, DType dtype = DType::kFP64);

  template <typename T>
    requires std::is_arithmetic_v<T>
  Vector(const std::vector<T>& vals, const gbtl::IndexArray& idx,
         gbtl::IndexType size)
      : Vector(size, dtype_of<T>()) {
    build_from(idx, vals);
  }

  static Vector from_dense(const std::vector<double>& dense,
                           DType dtype = DType::kFP64);

  /// Adopt an existing native vector without copying (see Matrix::adopt).
  template <typename T>
  static Vector adopt(gbtl::Vector<T>&& native) {
    Vector v;
    v.dtype_ = dtype_of<T>();
    v.impl_ = std::shared_ptr<void>(
        new gbtl::Vector<T>(std::move(native)),
        [](void* p) { delete static_cast<gbtl::Vector<T>*>(p); });
    return v;
  }

  bool defined() const noexcept { return impl_ != nullptr; }
  DType dtype() const { return dtype_; }
  gbtl::IndexType size() const;
  std::size_t nvals() const;

  bool has_element(gbtl::IndexType i) const;
  double get(gbtl::IndexType i) const;
  Scalar get_element(gbtl::IndexType i) const;
  void set(gbtl::IndexType i, Scalar v);
  void set(gbtl::IndexType i, double v) { set(i, Scalar(v, dtype_)); }
  void remove_element(gbtl::IndexType i);
  void clear();

  Vector dup() const;
  Vector astype(DType dtype) const;

  bool same_object(const Vector& other) const {
    return impl_ == other.impl_;
  }
  bool equals(const Vector& other) const;

  template <typename T>
  gbtl::Vector<T>& typed() {
    check_dtype(dtype_of<T>());
    return *static_cast<gbtl::Vector<T>*>(impl_.get());
  }
  template <typename T>
  const gbtl::Vector<T>& typed() const {
    check_dtype(dtype_of<T>());
    return *static_cast<const gbtl::Vector<T>*>(impl_.get());
  }
  void* raw() const { return impl_.get(); }

  // --- DSL surface ----------------------------------------------------------

  ComplementedVector operator~() const;

  MaskedVector operator[](const Vector& mask);
  MaskedVector operator[](const ComplementedVector& mask);
  MaskedVector operator[](NoneType);
  /// Indexed target / extract source: w[0:10] (Python gives slices to the
  /// same brackets as masks; the argument type disambiguates).
  SubVectorRef operator[](const Slice& idx) const;
  SubVectorRef operator[](gbtl::IndexArray idx) const;

  Vector& operator=(const VectorExpr& expr);

 private:
  friend class VectorExpr;
  void check_dtype(DType dt) const;
  template <typename VT>
  void build_from(const gbtl::IndexArray& idx, const std::vector<VT>& vals);

  DType dtype_ = DType::kFP64;
  std::shared_ptr<void> impl_;
};

// ---------------------------------------------------------------------------
// Markers.
// ---------------------------------------------------------------------------

class TransposedMatrix {
 public:
  explicit TransposedMatrix(Matrix base) : base_(std::move(base)) {}
  const Matrix& base() const noexcept { return base_; }
  /// (A.T).T == A.
  Matrix T() const { return base_; }

 private:
  Matrix base_;
};

class ComplementedMatrix {
 public:
  explicit ComplementedMatrix(Matrix base) : base_(std::move(base)) {}
  const Matrix& base() const noexcept { return base_; }

 private:
  Matrix base_;
};

class ComplementedVector {
 public:
  explicit ComplementedVector(Vector base) : base_(std::move(base)) {}
  const Vector& base() const noexcept { return base_; }

 private:
  Vector base_;
};

// ---------------------------------------------------------------------------
// Assignment proxies. Each captures the replace flag and accumulator from
// the operator context at the moment of assignment.
// ---------------------------------------------------------------------------

class MaskedMatrix {
 public:
  MaskedMatrix(Matrix target, MatrixMaskArg mask)
      : target_(std::move(target)), mask_(std::move(mask)) {}

  /// C[M] = <expr>: evaluate the deferred expression into the target.
  MaskedMatrix& operator=(const MatrixExpr& expr);
  /// C[M] = A: identity-apply the container into the target.
  MaskedMatrix& operator=(const Matrix& a);
  /// C[M] = s: constant assign over all indices.
  MaskedMatrix& operator=(double s);
  MaskedMatrix& operator=(Scalar s);

  /// C[M] += <expr>: accumulate with the context accumulator (falling back
  /// to the context monoid/semiring-add, as in SSSP Fig. 4a).
  MaskedMatrix& operator+=(const MatrixExpr& expr);
  MaskedMatrix& operator+=(const Matrix& a);

  /// C[M](rows, cols) = ... — masked indexed assignment.
  SubMatrixRef operator()(const Slice& rows, const Slice& cols);

  const Matrix& target() const noexcept { return target_; }
  const MatrixMaskArg& mask() const noexcept { return mask_; }

 private:
  Matrix target_;
  MatrixMaskArg mask_;
};

class MaskedVector {
 public:
  MaskedVector(Vector target, VectorMaskArg mask)
      : target_(std::move(target)), mask_(std::move(mask)) {}

  MaskedVector& operator=(const VectorExpr& expr);
  MaskedVector& operator=(const Vector& u);
  MaskedVector& operator=(double s);
  MaskedVector& operator=(Scalar s);
  MaskedVector& operator+=(const VectorExpr& expr);
  MaskedVector& operator+=(const Vector& u);

  SubVectorRef operator[](const Slice& idx);

  const Vector& target() const noexcept { return target_; }
  const VectorMaskArg& mask() const noexcept { return mask_; }

 private:
  Vector target_;
  VectorMaskArg mask_;
};

/// C(rows, cols), optionally masked — a target for assign and a source for
/// extract (implicit conversion to an expression evaluates the extract).
class SubMatrixRef {
 public:
  SubMatrixRef(Matrix target, MatrixMaskArg mask, Slice rows, Slice cols)
      : target_(std::move(target)), mask_(std::move(mask)),
        rows_(rows), cols_(cols) {}
  SubMatrixRef(Matrix target, MatrixMaskArg mask, gbtl::IndexArray rows,
               gbtl::IndexArray cols)
      : target_(std::move(target)), mask_(std::move(mask)),
        rows_(Slice::all()), cols_(Slice::all()),
        row_idx_(std::move(rows)), col_idx_(std::move(cols)) {}

  SubMatrixRef& operator=(const Matrix& a);
  SubMatrixRef& operator=(const MatrixExpr& expr);
  SubMatrixRef& operator=(double s);
  SubMatrixRef& operator=(Scalar s);
  SubMatrixRef& operator+=(const Matrix& a);

  /// Extract: Matrix sub = A(rows, cols);
  Matrix extract() const;
  operator Matrix() const { return extract(); }  // NOLINT(google-explicit-constructor)

  gbtl::IndexArray resolved_rows() const;
  gbtl::IndexArray resolved_cols() const;
  const Matrix& target() const noexcept { return target_; }
  const MatrixMaskArg& mask() const noexcept { return mask_; }

 private:
  Matrix target_;
  MatrixMaskArg mask_;
  Slice rows_;
  Slice cols_;
  std::optional<gbtl::IndexArray> row_idx_;
  std::optional<gbtl::IndexArray> col_idx_;
};

class SubVectorRef {
 public:
  SubVectorRef(Vector target, VectorMaskArg mask, Slice idx)
      : target_(std::move(target)), mask_(std::move(mask)), idx_(idx) {}
  SubVectorRef(Vector target, VectorMaskArg mask, gbtl::IndexArray idx)
      : target_(std::move(target)), mask_(std::move(mask)),
        idx_(Slice::all()), idx_arr_(std::move(idx)) {}

  SubVectorRef& operator=(const Vector& u);
  SubVectorRef& operator=(const VectorExpr& expr);
  SubVectorRef& operator=(double s);
  SubVectorRef& operator=(Scalar s);
  SubVectorRef& operator+=(const Vector& u);

  Vector extract() const;
  operator Vector() const { return extract(); }  // NOLINT(google-explicit-constructor)

  gbtl::IndexArray resolved_indices() const;
  const Vector& target() const noexcept { return target_; }
  const VectorMaskArg& mask() const noexcept { return mask_; }

 private:
  Vector target_;
  VectorMaskArg mask_;
  Slice idx_;
  std::optional<gbtl::IndexArray> idx_arr_;
};

// ---------------------------------------------------------------------------
// Template member definitions.
// ---------------------------------------------------------------------------

template <typename VT>
void Matrix::build_from(const gbtl::IndexArray& rows,
                        const gbtl::IndexArray& cols,
                        const std::vector<VT>& vals) {
  visit_dtype(dtype_, [&](auto tag) {
    using U = typename decltype(tag)::type;
    std::vector<U> cast(vals.begin(), vals.end());
    static_cast<gbtl::Matrix<U>*>(impl_.get())->build(rows, cols, cast);
  });
}

template <typename VT>
void Vector::build_from(const gbtl::IndexArray& idx,
                        const std::vector<VT>& vals) {
  visit_dtype(dtype_, [&](auto tag) {
    using U = typename decltype(tag)::type;
    std::vector<U> cast(vals.begin(), vals.end());
    static_cast<gbtl::Vector<U>*>(impl_.get())->build(idx, cast);
  });
}

}  // namespace pygb
