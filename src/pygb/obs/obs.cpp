// pygb/obs/obs.cpp — flags, counters, histograms, span recording, and the
// PYGB_TRACE / PYGB_METRICS environment activation.
#include "pygb/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "gbtl/detail/pool.hpp"
#include "pygb/governor.hpp"
#include "pygb/obs/crash.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/flightrec.hpp"

namespace pygb::obs {

namespace detail {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};
std::atomic<std::uint64_t> g_counters[kCounterCount]{};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace detail

void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

namespace {

/// The governor is a leaf module (the worker pool links it without
/// libpygb), so it keeps its own atomics; mirror them into the obs slots
/// whenever a reader looks, keeping every export path coherent.
void sync_governor_counters() noexcept {
  const auto gs = pygb::governor::stats();
  const auto set = [](Counter c, std::uint64_t v) {
    detail::g_counters[static_cast<unsigned>(c)].store(
        v, std::memory_order_relaxed);
  };
  set(Counter::kOpsCancelled, gs.ops_cancelled);
  set(Counter::kOpsDeadlineExceeded, gs.ops_deadline_exceeded);
  set(Counter::kMemBudgetRejections, gs.mem_budget_rejections);
  set(Counter::kMemPeakBytes, gs.mem_peak_bytes);
}

/// Same mirror discipline for the flight recorder (also a leaf module).
/// kCrashReports is NOT mirrored: the crash handler counter_adds it
/// directly (lock-free fetch_add, AS-safe).
void sync_flightrec_counters() noexcept {
  detail::g_counters[static_cast<unsigned>(Counter::kFlightEvents)].store(
      flightrec::total_recorded(), std::memory_order_relaxed);
}

void sync_mxv_counters() noexcept {
  detail::g_counters[static_cast<unsigned>(Counter::kMxvPushDecisions)].store(
      gbtl::detail::mxv_push_decisions(), std::memory_order_relaxed);
  detail::g_counters[static_cast<unsigned>(Counter::kMxvPullDecisions)].store(
      gbtl::detail::mxv_pull_decisions(), std::memory_order_relaxed);
}

}  // namespace

std::uint64_t counter_value(Counter c) noexcept {
  switch (c) {
    case Counter::kOpsCancelled:
    case Counter::kOpsDeadlineExceeded:
    case Counter::kMemBudgetRejections:
    case Counter::kMemPeakBytes:
      sync_governor_counters();
      break;
    case Counter::kFlightEvents:
      sync_flightrec_counters();
      break;
    case Counter::kMxvPushDecisions:
    case Counter::kMxvPullDecisions:
      sync_mxv_counters();
      break;
    default:
      break;
  }
  return detail::g_counters[static_cast<unsigned>(c)].load(
      std::memory_order_relaxed);
}

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kRegistryLookups:
      return "registry_lookups";
    case Counter::kStaticHits:
      return "static_hits";
    case Counter::kMemoryHits:
      return "memory_hits";
    case Counter::kDiskHits:
      return "disk_hits";
    case Counter::kCompiles:
      return "compiles";
    case Counter::kInterpDispatches:
      return "interp_dispatches";
    case Counter::kCompileNanos:
      return "compile_ns";
    case Counter::kGeneratedSourceBytes:
      return "generated_source_bytes";
    case Counter::kTraceEventsDropped:
      return "trace_events_dropped";
    case Counter::kJitFallbacks:
      return "jit_fallbacks";
    case Counter::kCacheQuarantines:
      return "cache_quarantines";
    case Counter::kCacheEvictedBytes:
      return "cache_evicted_bytes";
    case Counter::kJitTimeouts:
      return "jit_timeouts";
    case Counter::kJitKills:
      return "jit_kills";
    case Counter::kJitRetries:
      return "jit_retries";
    case Counter::kWaiterTimeouts:
      return "jit_waiter_timeouts";
    case Counter::kBreakerOpens:
      return "breaker_open";
    case Counter::kBreakerProbes:
      return "breaker_probes";
    case Counter::kBreakerShortCircuits:
      return "breaker_short_circuits";
    case Counter::kLockTimeouts:
      return "cache_lock_timeouts";
    case Counter::kFaultsInjected:
      return "faults_injected";
    case Counter::kOpsCancelled:
      return "ops_cancelled";
    case Counter::kOpsDeadlineExceeded:
      return "ops_deadline_exceeded";
    case Counter::kMemBudgetRejections:
      return "mem_budget_rejections";
    case Counter::kMemPeakBytes:
      return "mem_peak_bytes";
    case Counter::kFlightEvents:
      return "flight_events";
    case Counter::kCrashReports:
      return "crash_reports";
    case Counter::kFusionDeferred:
      return "fusion_deferred";
    case Counter::kFusionFlushes:
      return "fusion_flushes";
    case Counter::kFusionChains:
      return "fusion_chains";
    case Counter::kFusionFusedStatements:
      return "fusion_fused_statements";
    case Counter::kFusionEagerOps:
      return "fusion_eager_ops";
    case Counter::kFusionDce:
      return "fusion_dce";
    case Counter::kMxvPushDecisions:
      return "mxv_push_decisions";
    case Counter::kMxvPullDecisions:
      return "mxv_pull_decisions";
    case Counter::kServeAdmitted:
      return "serve_admitted";
    case Counter::kServeRejected:
      return "serve_rejected";
    case Counter::kServeCancelled:
      return "serve_cancelled";
    case Counter::kServeDisconnects:
      return "serve_disconnects";
    case Counter::kServeDrained:
      return "serve_drained";
    case Counter::kCompiledRequests:
      return "compiled_requests";
    case Counter::kCompiledServed:
      return "compiled_served";
    case Counter::kCompiledFallbacks:
      return "compiled_fallbacks";
    case Counter::kCompiledRestarts:
      return "compiled_restarts";
    case Counter::kCompiledBreakerTrips:
      return "compiled_breaker_trips";
    case Counter::kTierAsyncCompiles:
      return "tier_async_compiles";
    case Counter::kTierDeferredServes:
      return "tier_deferred_serves";
    case Counter::kCount_:
      break;
  }
  return "?";
}

void reset_counters() noexcept {
  pygb::governor::reset_stats();
  gbtl::detail::reset_mxv_decisions();
  for (auto& c : detail::g_counters) c.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

namespace {

/// Buckets updated with relaxed atomics only; objects are never freed, so
/// thread-local caches and the at-exit exporter can hold bare pointers.
struct AtomicHistogram {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> buckets[kHistogramBuckets]{};
};

struct HistRegistry {
  std::mutex mu;
  std::map<std::string, AtomicHistogram*, std::less<>> map;
};

/// Leaked on purpose: keeps at-exit exporters safe regardless of static
/// destruction order.
HistRegistry& hist_registry() {
  static auto* reg = new HistRegistry();
  return *reg;
}

AtomicHistogram& hist_for(std::string_view name) {
  thread_local std::map<std::string, AtomicHistogram*, std::less<>> cache;
  if (auto it = cache.find(name); it != cache.end()) return *it->second;
  auto& reg = hist_registry();
  AtomicHistogram* hist;
  {
    std::lock_guard lock(reg.mu);
    auto it = reg.map.find(name);
    if (it == reg.map.end()) {
      it = reg.map.emplace(std::string(name), new AtomicHistogram()).first;
    }
    hist = it->second;
  }
  cache.emplace(std::string(name), hist);
  return *hist;
}

}  // namespace

int value_bucket(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const int b = std::bit_width(v);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

std::uint64_t bucket_lower_bound(int bucket) noexcept {
  if (bucket <= 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void record_value(std::string_view histogram, std::uint64_t value) {
  if (!metrics_enabled()) return;
  auto& h = hist_for(histogram);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[value_bucket(value)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t HistogramData::percentile(double p) const noexcept {
  if (count == 0) return 0;
  p = std::min(1.0, std::max(0.0, p));
  const std::uint64_t rank =
      std::min<std::uint64_t>(count - 1,
                              static_cast<std::uint64_t>(p * count));
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return bucket_lower_bound(b);
  }
  return bucket_lower_bound(kHistogramBuckets - 1);
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  sync_governor_counters();
  sync_flightrec_counters();
  sync_mxv_counters();
  for (unsigned i = 0; i < kCounterCount; ++i) {
    snap.counters[i] =
        detail::g_counters[i].load(std::memory_order_relaxed);
  }
  auto& reg = hist_registry();
  std::lock_guard lock(reg.mu);
  for (const auto& [name, hist] : reg.map) {
    HistogramData data;
    data.count = hist->count.load(std::memory_order_relaxed);
    data.sum = hist->sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      data.buckets[static_cast<std::size_t>(b)] =
          hist->buckets[b].load(std::memory_order_relaxed);
    }
    snap.histograms.emplace(name, data);
  }
  return snap;
}

void reset_metrics() noexcept {
  reset_counters();
  auto& reg = hist_registry();
  std::lock_guard lock(reg.mu);
  for (auto& [name, hist] : reg.map) {
    hist->count.store(0, std::memory_order_relaxed);
    hist->sum.store(0, std::memory_order_relaxed);
    for (auto& b : hist->buckets) b.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

namespace {

/// Per-thread cap; beyond it events are counted as dropped rather than
/// growing without bound (long traced runs, benchmarks).
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct ThreadSink {
  std::mutex mu;  ///< uncontended for the owner; taken by the collector
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct SinkRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  std::uint32_t next_tid = 1;
};

SinkRegistry& sink_registry() {
  static auto* reg = new SinkRegistry();  // leaked: at-exit safe
  return *reg;
}

ThreadSink& local_sink() {
  thread_local std::shared_ptr<ThreadSink> sink = [] {
    auto s = std::make_shared<ThreadSink>();
    auto& reg = sink_registry();
    std::lock_guard lock(reg.mu);
    s->tid = reg.next_tid++;
    reg.sinks.push_back(s);
    return s;
  }();
  return *sink;
}

}  // namespace

std::uint32_t current_thread_tid() { return local_sink().tid; }

namespace detail {
thread_local SpanStackTls g_span_stack{};
}  // namespace detail

int span_stack_unsafe(const char** out, int max) noexcept {
  const detail::SpanStackTls& st = detail::g_span_stack;
  const int depth = st.depth;
  const int n = std::min({depth, max, detail::kSpanStackMax});
  for (int i = 0; i < n; ++i) out[i] = st.names[i];
  return depth;
}

void Span::start(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
  active_ = true;
  auto& st = detail::g_span_stack;
  if (st.depth < detail::kSpanStackMax) st.names[st.depth] = name;
  ++st.depth;
}

void Span::finish() {
  auto& st = detail::g_span_stack;
  if (st.depth > 0) --st.depth;
  const std::uint64_t end = now_ns();
  ThreadSink& sink = local_sink();
  std::lock_guard lock(sink.mu);
  if (sink.events.size() >= kMaxEventsPerThread) {
    counter_add(Counter::kTraceEventsDropped);
    return;
  }
  sink.events.push_back(TraceEvent{name_, start_ns_, end - start_ns_,
                                   sink.tid, std::move(args_)});
}

Span& Span::attr(const char* key, std::string_view value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  detail::append_json_string(args_, key);
  args_ += ':';
  detail::append_json_string(args_, value);
  return *this;
}

Span& Span::attr(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  detail::append_json_string(args_, key);
  args_ += ':';
  args_ += std::to_string(value);
  return *this;
}

Span& Span::attr(const char* key, std::int64_t value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  detail::append_json_string(args_, key);
  args_ += ':';
  args_ += std::to_string(value);
  return *this;
}

Span& Span::attr(const char* key, double value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  detail::append_json_string(args_, key);
  args_ += ':';
  char buf[40];
  // JSON has no NaN/Inf literals; fall back to null.
  if (value != value || value > 1.7e308 || value < -1.7e308) {
    std::snprintf(buf, sizeof buf, "null");
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", value);
  }
  args_ += buf;
  return *this;
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> out;
  auto& reg = sink_registry();
  std::lock_guard rl(reg.mu);
  for (auto& sink : reg.sinks) {
    std::lock_guard sl(sink->mu);
    out.insert(out.end(), sink->events.begin(), sink->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

void clear_trace_events() {
  auto& reg = sink_registry();
  std::lock_guard rl(reg.mu);
  for (auto& sink : reg.sinks) {
    std::lock_guard sl(sink->mu);
    sink->events.clear();
  }
}

std::size_t trace_event_count() {
  std::size_t n = 0;
  auto& reg = sink_registry();
  std::lock_guard rl(reg.mu);
  for (auto& sink : reg.sinks) {
    std::lock_guard sl(sink->mu);
    n += sink->events.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Environment activation
// ---------------------------------------------------------------------------

namespace {

std::string& trace_path_slot() {
  static auto* path = new std::string();  // leaked: at-exit safe
  return *path;
}

bool g_dump_metrics_at_exit = false;

void flush_at_exit() {
  const std::string& path = trace_path_slot();
  if (!path.empty() && tracing_enabled()) {
    std::string error;
    if (write_chrome_trace(path, &error)) {
      std::fprintf(stderr, "pygb: trace written to %s (%zu events)\n",
                   path.c_str(), trace_event_count());
    } else {
      std::fprintf(stderr, "pygb: failed to write trace to %s: %s\n",
                   path.c_str(), error.c_str());
    }
  }
  if (g_dump_metrics_at_exit && metrics_enabled()) {
    std::fputs(metrics_summary().c_str(), stderr);
  }
}

}  // namespace

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    bool want_atexit = false;
    if (const char* t = std::getenv("PYGB_TRACE"); t != nullptr && *t) {
      trace_path_slot() = t;
      set_tracing_enabled(true);
      want_atexit = true;
    }
    if (const char* m = std::getenv("PYGB_METRICS");
        m != nullptr && *m && std::strcmp(m, "0") != 0) {
      set_metrics_enabled(true);
      g_dump_metrics_at_exit = true;
      want_atexit = true;
    }
    if (want_atexit) std::atexit(flush_at_exit);
    // Postmortem half: PYGB_CRASH_DIR arms the crash handler,
    // PYGB_METRICS_JSON / PYGB_METRICS_PROM (+ PYGB_METRICS_INTERVAL_MS)
    // arm the snapshot exporters.
    pygb::crash::init_from_env();
    init_export_from_env();
  });
}

namespace {
/// Runs during static initialization of any binary linking libpygb (this
/// TU is always pulled in through the counter/flag symbols).
struct EnvActivation {
  EnvActivation() { init_from_env(); }
} g_env_activation;
}  // namespace

}  // namespace pygb::obs
