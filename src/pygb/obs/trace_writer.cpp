// pygb/obs/trace_writer.cpp — Chrome trace_event JSON export. The output
// is the "JSON Object Format" understood by Perfetto and chrome://tracing:
// one complete ("X") event per span with microsecond timestamps.
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "pygb/obs/obs.hpp"

namespace pygb::obs {

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_trace_events();
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    // trace_event timestamps are microseconds; keep nanosecond precision
    // with a fractional part.
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%" PRIu64
                  ".%03u,\"dur\":%" PRIu64 ".%03u,\"cat\":\"pygb\",\"name\":",
                  e.tid, e.start_ns / 1000,
                  static_cast<unsigned>(e.start_ns % 1000), e.dur_ns / 1000,
                  static_cast<unsigned>(e.dur_ns % 1000));
    out += buf;
    detail::append_json_string(out, e.name != nullptr ? e.name : "");
    out += ",\"args\":{";
    out += e.args;
    out += "}}";
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::string json = chrome_trace_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace pygb::obs
