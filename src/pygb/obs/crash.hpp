// pygb/obs/crash.hpp — crash attribution for JIT kernels
// (docs/OBSERVABILITY.md).
//
// A fatal signal (SIGSEGV / SIGBUS / SIGFPE / SIGABRT) inside a process
// that dispatches dynamically compiled kernels is normally unattributable:
// the faulting PC lands in an anonymous dlopen'd mapping and the core dump
// names `pygb_kernel + 0x2f` at best. This module turns that into a
// postmortem report naming the DSL expression that was executing:
//
//   * an async-signal-safe handler writes a plain-text report into
//     PYGB_CRASH_DIR (O_EXCL, pid-named — never overwrites);
//   * the report carries the raw backtrace, the flight-recorder tail
//     (pygb::flightrec), the active span stack, the governed op name, and
//     every obs counter;
//   * frames whose PC falls inside a registered JIT module (the loader's
//     module map, pygb/jit/loader.hpp) are attributed to the DSL func,
//     module key, and the #line-mapped kernel line of the generated source
//     persisted next to the cached .so.
//
// Concurrency: the first crashing thread wins a CAS and writes the report;
// other threads that crash concurrently park in nanosleep until the winner
// re-raises with SIG_DFL and the process dies with the original signal. A
// nested fault inside the handler bypasses attribution and dies directly.
//
// AS-safety discipline: the handler touches only write()/open()/close(),
// backtrace()/backtrace_symbols_fd() (primed at install time so libgcc is
// already loaded), lock-free atomics, and POD thread-locals. No malloc, no
// stdio, no locks.
#pragma once

#include <cstdint>

namespace pygb::crash {

/// Install the handlers, writing reports into `dir` (created best-effort).
/// Idempotent; the first call wins. Safe to call from static init.
void install(const char* dir);

bool installed() noexcept;

/// Directory reports are written to ("" when not installed).
const char* report_dir() noexcept;

/// Reports successfully written by this process (0 or 1 in practice —
/// the winner re-raises and dies).
std::uint64_t reports_written() noexcept;

/// Install from PYGB_CRASH_DIR if set. Called by obs::init_from_env().
void init_from_env();

namespace detail {
/// Write the full report body to `fd` for signal `sig` with fault address
/// `addr`. Exposed for tests (which exercise it on a pipe without dying);
/// AS-safe.
void write_report(int fd, int sig, const void* addr) noexcept;
}  // namespace detail

}  // namespace pygb::crash
