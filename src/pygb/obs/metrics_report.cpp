// pygb/obs/metrics_report.cpp — metrics exporters: a machine-readable JSON
// dump and the human-readable end-of-run summary printed by
// `pygb_cli --stats` and PYGB_METRICS=1.
#include <cinttypes>
#include <cstdio>

#include "pygb/obs/obs.hpp"

namespace pygb::obs {

namespace {

/// "742ns" / "3.2us" / "18ms" / "2.41s" — compact latency rendering.
std::string format_ns(double ns) {
  char buf[48];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string format_bytes(double b) {
  char buf[48];
  if (b < 1024) {
    std::snprintf(buf, sizeof buf, "%.0fB", b);
  } else if (b < 1024.0 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKiB", b / 1024);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fMiB", b / (1024.0 * 1024));
  }
  return buf;
}

/// Latency histograms carry a _ns suffix or prefix; byte histograms end
/// in _bytes. Everything else renders raw.
std::string format_value(const std::string& hist_name, double v) {
  if (hist_name.find("_ns") != std::string::npos) return format_ns(v);
  if (hist_name.find("_bytes") != std::string::npos) return format_bytes(v);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

std::string metrics_to_json() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::string out = "{\"counters\":{";
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (i != 0) out += ',';
    detail::append_json_string(out,
                               counter_name(static_cast<Counter>(i)));
    out += ':';
    out += std::to_string(snap.counters[i]);
  }
  out += "},\"histograms\":{";
  bool first_hist = true;
  for (const auto& [name, data] : snap.histograms) {
    if (!first_hist) out += ',';
    first_hist = false;
    detail::append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(data.count);
    out += ",\"sum\":";
    out += std::to_string(data.sum);
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = data.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '"';
      out += std::to_string(bucket_lower_bound(b));
      out += "\":";
      out += std::to_string(n);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string metrics_summary() {
  const MetricsSnapshot snap = metrics_snapshot();
  const auto counter = [&](Counter c) {
    return snap.counters[static_cast<unsigned>(c)];
  };
  const std::uint64_t lookups = counter(Counter::kRegistryLookups);
  const std::uint64_t static_hits = counter(Counter::kStaticHits);
  const std::uint64_t memory_hits = counter(Counter::kMemoryHits);
  const std::uint64_t disk_hits = counter(Counter::kDiskHits);
  const std::uint64_t compiles = counter(Counter::kCompiles);
  const std::uint64_t interp = counter(Counter::kInterpDispatches);

  std::string out = "== pygb metrics ==\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "dispatch: %" PRIu64 " lookups | static %" PRIu64
                " | jit-memory %" PRIu64 " | jit-disk %" PRIu64
                " | compiled %" PRIu64 " | interp %" PRIu64 "\n",
                lookups, static_hits, memory_hits, disk_hits, compiles,
                interp);
  out += line;
  if (lookups > 0) {
    const std::uint64_t cached = static_hits + memory_hits + disk_hits;
    std::snprintf(line, sizeof line,
                  "cache hit ratio: %.1f%% (%" PRIu64 "/%" PRIu64
                  " resolved without a compile)\n",
                  100.0 * static_cast<double>(cached) /
                      static_cast<double>(lookups),
                  cached, lookups);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "compile: %" PRIu64 " modules, %s wall, %s of generated "
                "source\n",
                compiles,
                format_ns(static_cast<double>(
                              counter(Counter::kCompileNanos)))
                    .c_str(),
                format_bytes(static_cast<double>(
                                 counter(Counter::kGeneratedSourceBytes)))
                    .c_str());
  out += line;
  if (const std::uint64_t dropped = counter(Counter::kTraceEventsDropped);
      dropped > 0) {
    std::snprintf(line, sizeof line,
                  "trace events dropped at buffer cap: %" PRIu64 "\n",
                  dropped);
    out += line;
  }
  {
    const std::uint64_t cancelled = counter(Counter::kOpsCancelled);
    const std::uint64_t deadlined = counter(Counter::kOpsDeadlineExceeded);
    const std::uint64_t rejected = counter(Counter::kMemBudgetRejections);
    const std::uint64_t peak = counter(Counter::kMemPeakBytes);
    std::snprintf(line, sizeof line,
                  "governor: %" PRIu64 " cancelled | %" PRIu64
                  " deadline-exceeded | %" PRIu64
                  " budget rejections | peak %s charged\n",
                  cancelled, deadlined, rejected,
                  format_bytes(static_cast<double>(peak)).c_str());
    out += line;
  }
  {
    // Direction-optimized mxv/vxm (docs/BACKENDS.md): only shown once the
    // simd backend has actually made a push-vs-pull decision.
    const std::uint64_t push = counter(Counter::kMxvPushDecisions);
    const std::uint64_t pull = counter(Counter::kMxvPullDecisions);
    if (push + pull > 0) {
      std::snprintf(line, sizeof line,
                    "mxv direction: %" PRIu64 " push | %" PRIu64 " pull\n",
                    push, pull);
      out += line;
    }
  }

  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, data] : snap.histograms) {
      if (data.count == 0) continue;
      const double mean = static_cast<double>(data.sum) /
                          static_cast<double>(data.count);
      std::snprintf(
          line, sizeof line,
          "  %-36s n=%-8" PRIu64 " mean=%-9s p50~%-9s p95~%-9s p99~%s\n",
          name.c_str(), data.count, format_value(name, mean).c_str(),
          format_value(name, static_cast<double>(data.percentile(0.50)))
              .c_str(),
          format_value(name, static_cast<double>(data.percentile(0.95)))
              .c_str(),
          format_value(name, static_cast<double>(data.percentile(0.99)))
              .c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace pygb::obs
