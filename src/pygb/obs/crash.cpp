// pygb/obs/crash.cpp — the async-signal-safe crash handler (crash.hpp).
#include "pygb/obs/crash.hpp"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "pygb/governor.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/loader.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::crash {

namespace {

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};
constexpr std::size_t kDirBytes = 512;
constexpr int kBacktraceDepth = 64;

char g_dir[kDirBytes] = {};
std::atomic<bool> g_installed{false};
std::atomic<std::uint64_t> g_reports{0};

/// One-shot winner latch: 0 = free, else the report is being written.
std::atomic<int> g_crash_latch{0};

/// Nested-fault guard (POD, constant-init: safe to touch in a handler).
/// A fault raised while THIS thread is already inside the handler must die
/// immediately — re-entering the attribution path could loop forever.
thread_local bool g_in_handler = false;

/// Alternate signal stack so stack-overflow SIGSEGVs still get a report.
char g_altstack[64 * 1024];

// -- AS-safe formatting helpers (write(2) only; no stdio, no malloc) -------

void wr(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, s + off, n - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

void wr_u64(int fd, std::uint64_t v) {
  char buf[24];
  int i = sizeof buf;
  buf[--i] = '\0';
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && i > 0);
  wr(fd, buf + i);
}

void wr_hex(int fd, std::uint64_t v) {
  char buf[19];
  buf[0] = '0';
  buf[1] = 'x';
  for (int i = 0; i < 16; ++i) {
    buf[2 + i] = "0123456789abcdef"[(v >> (60 - 4 * i)) & 0xf];
  }
  buf[18] = '\0';
  wr(fd, buf);
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGABRT:
      return "SIGABRT";
  }
  return "signal";
}

/// Compose "<dir>/pygb-crash-<pid>[-<n>].report" into `out`; AS-safe.
void report_path(char* out, std::size_t cap, int attempt) {
  std::size_t o = 0;
  const auto put = [&](const char* s) {
    while (*s != '\0' && o + 1 < cap) out[o++] = *s++;
  };
  const auto put_u64 = [&](std::uint64_t v) {
    char buf[24];
    int i = sizeof buf;
    buf[--i] = '\0';
    do {
      buf[--i] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0 && i > 0);
    put(buf + i);
  };
  put(g_dir);
  put("/pygb-crash-");
  put_u64(static_cast<std::uint64_t>(::getpid()));
  if (attempt > 0) {
    put("-");
    put_u64(static_cast<std::uint64_t>(attempt));
  }
  put(".report");
  out[o] = '\0';
}

void restore_and_raise(int sig) {
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void handler(int sig, siginfo_t* info, void* /*ucontext*/) {
  if (g_in_handler) {
    // Fault inside the handler itself: no attribution, die now.
    restore_and_raise(sig);
    return;
  }
  g_in_handler = true;

  int expected = 0;
  if (!g_crash_latch.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
    // A concurrent thread is writing the report. Park until its SIG_DFL
    // re-raise terminates the process; nanosleep is AS-safe.
    for (;;) {
      struct timespec ts = {1, 0};
      ::nanosleep(&ts, nullptr);
    }
  }

  char path[kDirBytes + 64];
  int fd = -1;
  for (int attempt = 0; attempt < 8 && fd < 0; ++attempt) {
    report_path(path, sizeof path, attempt);
    fd = ::open(path, O_WRONLY | O_CREAT | O_EXCL, 0644);
  }
  if (fd >= 0) {
    detail::write_report(fd, sig,
                         info != nullptr ? info->si_addr : nullptr);
    ::close(fd);
    g_reports.fetch_add(1, std::memory_order_relaxed);
    // Lock-free fetch_add: AS-safe. Mostly for tests that exercise
    // write_report on a pipe; a real winner dies on the re-raise below.
    obs::counter_add(obs::Counter::kCrashReports);
    wr(2, "pygb: crash report written to ");
    wr(2, path);
    wr(2, "\n");
  } else {
    wr(2, "pygb: crash (");
    wr(2, signal_name(sig));
    wr(2, ") but no report could be created in ");
    wr(2, g_dir);
    wr(2, "\n");
  }
  restore_and_raise(sig);
}

}  // namespace

namespace detail {

void write_report(int fd, int sig, const void* addr) noexcept {
  wr(fd, "pygb crash report\nschema: pygb.crash\nschema_version: 1\n");
  wr(fd, "signal: ");
  wr_u64(fd, static_cast<std::uint64_t>(sig));
  wr(fd, " (");
  wr(fd, signal_name(sig));
  wr(fd, ")\nfault_addr: ");
  wr_hex(fd, reinterpret_cast<std::uintptr_t>(addr));
  wr(fd, "\npid: ");
  wr_u64(fd, static_cast<std::uint64_t>(::getpid()));
  wr(fd, "\n");

  // Active operation (torn reads acceptable; see governor.hpp).
  char op[128];
  governor::current_op_unsafe(op, sizeof op);
  wr(fd, "active_op: ");
  wr(fd, op[0] != '\0' ? op : "(idle)");
  wr(fd, "\n");

  // Span stack of the crashing thread, outermost first.
  const char* spans[obs::detail::kSpanStackMax];
  const int depth = obs::span_stack_unsafe(spans, obs::detail::kSpanStackMax);
  wr(fd, "span_stack:");
  if (depth == 0) wr(fd, " (empty)");
  const int shown =
      depth < obs::detail::kSpanStackMax ? depth : obs::detail::kSpanStackMax;
  for (int i = 0; i < shown; ++i) {
    wr(fd, i == 0 ? " " : " > ");
    wr(fd, spans[i]);
  }
  if (depth > shown) wr(fd, " > ...");
  wr(fd, "\n");

  // Raw backtrace. backtrace() was primed at install time, so libgcc's
  // unwinder is already resident and this does not allocate.
  void* frames[kBacktraceDepth];
  const int nframes = ::backtrace(frames, kBacktraceDepth);
  wr(fd, "backtrace:\n");
  ::backtrace_symbols_fd(frames, nframes, fd);

  // Attribution: any frame inside a registered JIT module maps back to the
  // DSL expression through the loader's module map.
  wr(fd, "jit_frames:\n");
  bool attributed = false;
  for (int i = 0; i < nframes; ++i) {
    const auto pc = reinterpret_cast<std::uintptr_t>(frames[i]);
    const jit::modmap::Entry* m = jit::modmap::find(pc);
    if (m == nullptr) continue;
    attributed = true;
    wr(fd, "  frame ");
    wr_u64(fd, static_cast<std::uint64_t>(i));
    wr(fd, ": pc=");
    wr_hex(fd, pc);
    wr(fd, " offset=");
    wr_hex(fd, pc - m->base);
    wr(fd, "\n    func: ");
    wr(fd, m->func);
    wr(fd, "\n    module_key: ");
    wr(fd, m->key);
    wr(fd, "\n    key_hash: ");
    wr_hex(fd, m->key_hash);
    wr(fd, "\n    generated_line: ");
    wr_u64(fd, m->kernel_line);
    wr(fd, "\n    module: ");
    wr(fd, m->so_path);
    wr(fd, "\n    dsl_source: see .srcmap sidecar next to the module\n");
  }
  if (!attributed) wr(fd, "  (no frames inside JIT modules)\n");

  // Every loaded module, for context even when the fault is in host code.
  wr(fd, "jit_modules:\n");
  const std::size_t nmod = jit::modmap::count();
  for (std::size_t i = 0; i < nmod; ++i) {
    const jit::modmap::Entry* m = jit::modmap::at(i);
    if (m == nullptr) break;
    wr(fd, "  ");
    wr_hex(fd, m->base);
    wr(fd, "-");
    wr_hex(fd, m->end);
    wr(fd, " func=");
    wr(fd, m->func);
    wr(fd, " key_hash=");
    wr_hex(fd, m->key_hash);
    wr(fd, " line=");
    wr_u64(fd, m->kernel_line);
    wr(fd, "\n");
  }
  if (nmod == 0) wr(fd, "  (none)\n");

  // Compile-service supervision state (relaxed atomic mirror; AS-safe).
  // "Did the service die with us, or were we already degraded?" is the
  // first question a pygb_serve postmortem asks.
  {
    const jit::compiled_state::Snapshot cs = jit::compiled_state::snapshot();
    wr(fd, "compile_service:\n  enabled: ");
    wr(fd, cs.enabled != 0 ? "yes" : "no");
    wr(fd, "\n  worker_pid: ");
    if (cs.worker_pid > 0) {
      wr_u64(fd, static_cast<std::uint64_t>(cs.worker_pid));
    } else {
      wr(fd, "(none)");
    }
    wr(fd, "\n  breaker_open: ");
    wr(fd, cs.breaker_open != 0 ? "yes" : "no");
    wr(fd, "\n  restarts: ");
    wr_u64(fd, cs.restarts);
    wr(fd, "\n  requests: ");
    wr_u64(fd, cs.requests);
    wr(fd, "\n  served: ");
    wr_u64(fd, cs.served);
    wr(fd, "\n  fallbacks: ");
    wr_u64(fd, cs.fallbacks);
    wr(fd, "\n");
  }

  // Counters cover governor / breaker / cache state (relaxed atomic loads;
  // leaf-module mirrors may lag — the flight recorder tail below has the
  // authoritative transition order).
  wr(fd, "counters:\n");
  for (unsigned i = 0; i < obs::kCounterCount; ++i) {
    const std::uint64_t v =
        obs::detail::g_counters[i].load(std::memory_order_relaxed);
    if (v == 0) continue;
    wr(fd, "  ");
    wr(fd, obs::counter_name(static_cast<obs::Counter>(i)));
    wr(fd, ": ");
    wr_u64(fd, v);
    wr(fd, "\n");
  }

  wr(fd, "flight_recorder:\n");
  flightrec::dump_to_fd(fd, 64);
  wr(fd, "end of report\n");
}

}  // namespace detail

void install(const char* dir) {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  if (dir == nullptr || *dir == '\0') dir = ".";
  std::strncpy(g_dir, dir, sizeof g_dir - 1);
  ::mkdir(g_dir, 0755);  // best effort; open() reports real failures

  // Prime the unwinder outside signal context: the first backtrace() call
  // dlopens libgcc_s and allocates — neither is AS-safe.
  void* prime[4];
  ::backtrace(prime, 4);

  stack_t ss = {};
  ss.ss_sp = g_altstack;
  ss.ss_size = sizeof g_altstack;
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa = {};
  sa.sa_sigaction = &handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  ::sigemptyset(&sa.sa_mask);
  for (int sig : kSignals) ::sigaction(sig, &sa, nullptr);
}

bool installed() noexcept {
  return g_installed.load(std::memory_order_relaxed);
}

const char* report_dir() noexcept {
  return installed() ? g_dir : "";
}

std::uint64_t reports_written() noexcept {
  return g_reports.load(std::memory_order_relaxed);
}

void init_from_env() {
  const char* dir = std::getenv("PYGB_CRASH_DIR");
  if (dir != nullptr && *dir != '\0') install(dir);
}

}  // namespace pygb::crash
