// pygb/obs/flightrec.hpp — the always-on flight recorder: a fixed-size
// per-thread ring of recent pipeline events, recorded unconditionally at a
// handful of relaxed atomic stores per event and drained on demand.
//
// This is the postmortem half of pygb::obs. Spans and histograms are
// opt-in and allocate; the flight recorder is neither — it exists so that
// when a process dies (SIGSEGV inside a JIT module, a wedged governor
// deadline, an OOM kill one op later), the crash report in PYGB_CRASH_DIR
// can say what the dispatch pipeline was doing in the moments before:
// which ops began and ended, which backend served them, what compiled,
// what the breaker and governor did.
//
// Design constraints, in order:
//
//   * RECORDING IS ALWAYS ON and must cost nanoseconds: one relaxed
//     fetch_add on the global sequence counter, one on the ring cursor,
//     and eight relaxed word stores into the claimed slot. No locks, no
//     allocation, no branches on configuration.
//   * READABLE FROM A SIGNAL HANDLER: every slot is an array of
//     std::atomic<std::uint64_t> words (a seqlock: word 0 is the sequence
//     number, stored 0 → payload → seq with release ordering), so both
//     snapshot() and the async-signal-safe dump_to_fd() read with plain
//     atomic loads and detect torn slots by re-reading word 0 — no data
//     races, TSan-clean, no UB.
//   * LEAF MODULE: no dependencies on the rest of pygb, so the gbtl
//     worker pool and the governor (which must not link libpygb) can
//     record events too. The obs counter kFlightEvents mirrors
//     total_recorded() the same way governor stats are mirrored.
//
// Threads register a ring on first record; rings are heap-allocated and
// leaked so a ring outlives its thread (events from an exited worker still
// appear in a later crash report). When more than kMaxRings threads record
// (absurd for this codebase), the surplus threads drop events and count
// them.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pygb::flightrec {

/// What happened. Values are stable (they appear in crash reports and the
/// drain API; renumbering would garble postmortems of older builds).
enum class EventKind : std::uint16_t {
  kNone = 0,        ///< empty slot
  kOpBegin = 1,     ///< eval_into: func about to dispatch (v0=target nnz,
                    ///< v1=target dim)
  kOpEnd = 2,       ///< dispatch: kernel returned (v0=duration ns,
                    ///< v1=dispatch-key hash, a32=backend code)
  kChain = 3,       ///< fused chain dispatched (v0=statements, v1=params)
  kCompileBegin = 4,///< registry: g++ starting (detail=stem, v1=key hash)
  kCompileEnd = 5,  ///< registry: g++ done (v0=duration ns, a32=1 on ok)
  kModuleLoad = 6,  ///< loader: module dlopen'd + verified (detail=stem)
  kQuarantine = 7,  ///< cache: module failed verify/load, moved aside
  kBreaker = 8,     ///< circuit transition (detail=state, v1=key hash)
  kGovernor = 9,    ///< deadline/cancel/budget event (detail=which)
  kPool = 10,       ///< worker pool resize / lazy start (v0=threads)
  kFault = 11,      ///< fault injection fired (detail=site)
  kModule = 12,     ///< event recorded from inside a JIT module via the
                    ///< injected PoolApi (detail=module-provided note)
  kCrash = 13,      ///< crash handler entered (v0=signal number)
  kFusionPlan = 14, ///< fusion-planner decision (detail = "flush"/"fuse"/
                    ///< "eager"/"dce"/"split"/"fallback"; v0/v1 decision-
                    ///< specific, see docs/FUSION.md)
  kServe = 15,      ///< pygb_serve lifecycle (detail = "admit"/"reject"/
                    ///< "done"/"error"/"cancel"/"disconnect"/"drain";
                    ///< v0 = request id, see docs/SERVING.md)
  kCompiled = 16,   ///< compile-service lifecycle (detail = "spawn"/
                    ///< "restart"/"hang"/"died"/"corrupt"/"breaker"/
                    ///< "degrade"/"stop"; v0 = worker pid or restart count,
                    ///< see docs/ROBUSTNESS.md)
};

const char* kind_name(EventKind k) noexcept;

/// Backend codes for kOpEnd's a32 (mirrors the registry's backend strings).
enum : std::uint32_t {
  kBackendUnknown = 0,
  kBackendStatic = 1,
  kBackendJitMemory = 2,
  kBackendJitDisk = 3,
  kBackendJitCompile = 4,
  kBackendJitWait = 5,
  kBackendInterp = 6,
};
std::uint32_t backend_code(const char* backend) noexcept;
const char* backend_name(std::uint32_t code) noexcept;

inline constexpr std::size_t kDetailBytes = 24;  ///< truncating copy
inline constexpr std::size_t kRingEvents = 256;  ///< per thread, power of 2
inline constexpr std::size_t kMaxRings = 256;    ///< registered threads

/// A decoded event (the drain-side representation; slots themselves are
/// atomic word arrays).
struct Event {
  std::uint64_t seq = 0;   ///< global claim order, 1-based; 0 = empty
  std::uint64_t t_ns = 0;  ///< steady-clock ns (flightrec-local anchor)
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  std::uint32_t a32 = 0;
  EventKind kind = EventKind::kNone;
  std::uint16_t tid = 0;   ///< flightrec-assigned small thread id
  char detail[kDetailBytes] = {};  ///< NUL-terminated, truncated
};

/// Record one event into the calling thread's ring. Always on; never
/// throws, never allocates after the thread's first record.
void record(EventKind kind, const char* detail = nullptr,
            std::uint64_t v0 = 0, std::uint64_t v1 = 0,
            std::uint32_t a32 = 0) noexcept;

/// Total events ever recorded (the global sequence counter). Mirrored
/// into obs Counter::kFlightEvents.
std::uint64_t total_recorded() noexcept;

/// Events dropped because more than kMaxRings threads recorded.
std::uint64_t total_dropped() noexcept;

/// Number of registered per-thread rings (monotonic; rings are leaked).
std::size_t ring_count() noexcept;

/// Merged copy of every ring's live slots, sorted by seq. Torn slots
/// (overwritten mid-read) are skipped. Not async-signal-safe (allocates);
/// use dump_to_fd from signal handlers.
std::vector<Event> snapshot();

/// One-line rendering ("seq=42 t=1.2ms op_end mxm v0=318 ..."), for tests
/// and the drain CLI. Not async-signal-safe.
std::string format_event(const Event& e);

/// ASYNC-SIGNAL-SAFE: write up to `max_per_ring` of the newest events of
/// every ring to `fd` as text, one event per line, newest last per ring.
/// Uses only write(2), atomic loads, and stack buffers.
void dump_to_fd(int fd, std::size_t max_per_ring) noexcept;

/// Monotonic ns since a flightrec-local anchor (leaf twin of obs::now_ns).
std::uint64_t now_ns() noexcept;

/// FNV-1a of a C string — the same hash the registry uses for dispatch
/// keys, exposed here so leaf record sites can tag events with key hashes
/// without linking the registry.
std::uint64_t fnv1a(const char* s) noexcept;

}  // namespace pygb::flightrec
