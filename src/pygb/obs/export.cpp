// pygb/obs/export.cpp — schema-versioned JSON + Prometheus text exposition
// and the periodic background flusher (export.hpp).
#include "pygb/obs/export.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "pygb/obs/obs.hpp"

namespace pygb::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; label values need \\ \" \n
/// escaped.
std::string prom_name(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_label_value(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// "kernel_ns/<func>/<backend>" → base "kernel_ns" + labels; any other
/// name exports label-free under its sanitized full name.
struct HistSeries {
  std::string base;
  std::string labels;  ///< rendered "{k=\"v\",...}" or ""
};

HistSeries split_histogram_name(const std::string& name) {
  const std::size_t s1 = name.find('/');
  if (s1 != std::string::npos) {
    const std::size_t s2 = name.find('/', s1 + 1);
    if (s2 != std::string::npos && name.find('/', s2 + 1) == std::string::npos) {
      HistSeries hs;
      hs.base = prom_name(name.substr(0, s1));
      hs.labels = "{func=\"" +
                  prom_label_value(name.substr(s1 + 1, s2 - s1 - 1)) +
                  "\",backend=\"" + prom_label_value(name.substr(s2 + 1)) +
                  "\"}";
      return hs;
    }
  }
  return HistSeries{prom_name(name), ""};
}

/// Inclusive upper bound of bucket b for integer observations: bucket b
/// holds [2^(b-1), 2^b), so everything in it is <= 2^b - 1 (bucket 0 holds
/// exactly 0).
std::uint64_t bucket_le(int b) noexcept {
  if (b <= 0) return 0;
  return (std::uint64_t{1} << b) - 1;
}

/// With-labels variant: splice extra members into an existing label set.
std::string merge_labels(const std::string& labels, const char* extra) {
  if (labels.empty()) return std::string("{") + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, std::string(",") + extra);
  return out;
}

// -- export destinations ---------------------------------------------------

struct ExportTargets {
  std::mutex mu;
  std::string json_path;
  std::string prom_path;
};

/// Leaked on purpose: the flusher thread and atexit hook outlive statics.
ExportTargets& targets() {
  static auto* t = new ExportTargets();
  return *t;
}

std::atomic<bool> g_flusher_running{false};

}  // namespace

std::string metrics_json() {
  // metrics_to_json() already renders {"counters":...,"histograms":...};
  // splice the schema envelope in front so both stay byte-coherent.
  std::string inner = metrics_to_json();
  std::string out = "{\"schema\":\"pygb.metrics\",\"schema_version\":1,";
  out.append(inner, 1, inner.size() - 1);
  return out;
}

std::string metrics_prometheus() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::string out;
  out.reserve(4096);

  for (unsigned i = 0; i < kCounterCount; ++i) {
    const std::string name =
        "pygb_" + prom_name(counter_name(static_cast<Counter>(i))) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(snap.counters[i]) + "\n";
  }

  // The histogram map is name-sorted, so series of one family ("kernel_ns/
  // mxm/jit", "kernel_ns/mxv/static", ...) are contiguous: emit one TYPE
  // line per family.
  std::string last_family;
  for (const auto& [name, data] : snap.histograms) {
    const HistSeries hs = split_histogram_name(name);
    const std::string family = "pygb_" + hs.base;
    if (family != last_family) {
      out += "# TYPE " + family + " histogram\n";
      last_family = family;
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = data.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      cumulative += n;
      const std::string le = "le=\"" + std::to_string(bucket_le(b)) + "\"";
      out += family + "_bucket" + merge_labels(hs.labels, le.c_str()) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket" + merge_labels(hs.labels, "le=\"+Inf\"") + " " +
           std::to_string(data.count) + "\n";
    out += family + "_sum" + hs.labels + " " + std::to_string(data.sum) + "\n";
    out += family + "_count" + hs.labels + " " + std::to_string(data.count) +
           "\n";
  }
  return out;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write failed for " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename to " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void set_export_paths(const std::string& json_path,
                      const std::string& prom_path) {
  auto& t = targets();
  std::lock_guard lock(t.mu);
  t.json_path = json_path;
  t.prom_path = prom_path;
}

int flush_metrics_files() {
  std::string json_path, prom_path;
  {
    auto& t = targets();
    std::lock_guard lock(t.mu);
    json_path = t.json_path;
    prom_path = t.prom_path;
  }
  int written = 0;
  std::string error;
  if (!json_path.empty()) {
    if (write_file_atomic(json_path, metrics_json() + "\n", &error)) {
      ++written;
    } else {
      std::fprintf(stderr, "pygb: metrics JSON flush failed: %s\n",
                   error.c_str());
    }
  }
  if (!prom_path.empty()) {
    if (write_file_atomic(prom_path, metrics_prometheus(), &error)) {
      ++written;
    } else {
      std::fprintf(stderr, "pygb: metrics Prometheus flush failed: %s\n",
                   error.c_str());
    }
  }
  return written;
}

void start_metrics_flusher(std::int64_t interval_ms) {
  if (interval_ms <= 0) return;
  bool expected = false;
  if (!g_flusher_running.compare_exchange_strong(expected, true)) return;
  // Detached: touches only leaked structures and static atomics, so it is
  // safe to be mid-flush while the process exits (the same discipline as
  // the at-exit exporters).
  std::thread([interval_ms] {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      flush_metrics_files();
    }
  }).detach();
}

namespace {

/// Saved dispositions so the termination handler can restore-and-reraise.
struct sigaction g_prev_term;
struct sigaction g_prev_int;
std::atomic<bool> g_term_flush_fired{false};

extern "C" void termination_flush_handler(int sig) {
  // One shot: a second signal during the flush must kill us, not recurse.
  //
  // Deliberately NOT async-signal-safe: serializing a metrics snapshot
  // allocates, which is the accepted best-effort tradeoff for a
  // *termination* handler — the process is exiting either way, and a
  // supervisor's kill-escalation bounds the (rare) deadlock where the
  // signal lands on a thread holding the malloc lock. The *crash*
  // handler (obs/crash.cpp) is held to the strict AS-safe standard; this
  // one trades that for a complete snapshot.
  if (!g_term_flush_fired.exchange(true)) {
    flush_metrics_files();
  }
  const struct sigaction* prev =
      sig == SIGTERM ? &g_prev_term : &g_prev_int;
  if (sigaction(sig, prev, nullptr) != 0) {
    std::signal(sig, SIG_DFL);
  }
  raise(sig);  // die with the right wait status (e.g. 128+15)
}

}  // namespace

void install_termination_flush() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = &termination_flush_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, &g_prev_term);
    sigaction(SIGINT, &sa, &g_prev_int);
  });
}

void init_export_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* json = std::getenv("PYGB_METRICS_JSON");
    const char* prom = std::getenv("PYGB_METRICS_PROM");
    const bool json_on = json != nullptr && *json != '\0';
    const bool prom_on = prom != nullptr && *prom != '\0';
    if (!json_on && !prom_on) return;
    set_export_paths(json_on ? json : "", prom_on ? prom : "");
    set_metrics_enabled(true);  // exports without data are pointless
    std::atexit([] { flush_metrics_files(); });
    // atexit alone loses the final snapshot when a supervisor SIGTERMs the
    // process (the common way a daemon dies) — see export.hpp.
    install_termination_flush();
    if (const char* iv = std::getenv("PYGB_METRICS_INTERVAL_MS");
        iv != nullptr && *iv != '\0') {
      start_metrics_flusher(std::strtoll(iv, nullptr, 10));
    }
  });
}

}  // namespace pygb::obs
