// pygb/obs/obs.hpp — structured observability for the Fig. 9 dispatch
// pipeline: spans, counters, and latency histograms, with Chrome-trace and
// metrics exporters.
//
// Three facilities, each independently switchable:
//
//   * spans   — RAII `Span` objects emit one complete trace event
//               (begin timestamp, duration, thread id, key/value attrs)
//               into a per-thread buffer. Export with write_chrome_trace()
//               and open the file in Perfetto / chrome://tracing.
//   * counters— always-on relaxed atomics for registry traffic (lookups,
//               cache hits, compiles, …). These supersede the old
//               mutex-guarded RegistryStats as the single source of truth;
//               Registry::stats() is now a snapshot of these.
//   * histograms — log₂-bucketed value distributions (kernel wall time by
//               (func, backend), compile time, generated-source bytes),
//               sharded per name behind a thread-local pointer cache and
//               updated with relaxed atomics only.
//
// Overhead discipline: every hook site first performs a single relaxed
// atomic load + branch (tracing_enabled() / metrics_enabled()); with both
// facilities off, nothing else runs and nothing allocates. Counters are the
// one exception (one relaxed fetch_add per registry lookup — cheaper than
// the mutex they replaced).
//
// Activation: programmatic (set_tracing_enabled / set_metrics_enabled) or
// via environment — PYGB_TRACE=<file> enables tracing and writes a Chrome
// trace at process exit; PYGB_METRICS=1 enables histograms and dumps a
// summary to stderr at exit. `pygb_cli --trace <file> / --stats` wrap the
// same switches.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pygb::obs {

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_metrics;
void append_json_string(std::string& out, std::string_view s);
}  // namespace detail

/// The single relaxed-atomic branch every span hook performs when idle.
inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
/// Same, for histogram recording sites.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Read PYGB_TRACE / PYGB_METRICS once and arrange the at-exit export.
/// Called automatically from a static initializer; idempotent.
void init_from_env();

/// Monotonic nanoseconds since an arbitrary process-local anchor.
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Counters (always on; the registry's source of truth)
// ---------------------------------------------------------------------------

enum class Counter : unsigned {
  kRegistryLookups,
  kStaticHits,
  kMemoryHits,   ///< previously dlopen'd JIT module (incl. in-flight waits)
  kDiskHits,     ///< .so found in the cache directory
  kCompiles,     ///< g++ invocations
  kInterpDispatches,
  kCompileNanos,          ///< total wall time inside g++
  kGeneratedSourceBytes,  ///< bytes of JIT source emitted
  kTraceEventsDropped,    ///< events discarded at the per-thread buffer cap
  kJitFallbacks,          ///< auto-mode JIT failures degraded to interp
  kCacheQuarantines,      ///< cached .so files failing load/verification
  kCacheEvictedBytes,     ///< bytes removed by PYGB_CACHE_MAX_BYTES eviction
  kJitTimeouts,           ///< compiler children killed at the deadline
  kJitKills,              ///< SIGKILL escalations (child ignored SIGTERM)
  kJitRetries,            ///< transient compile failures retried
  kWaiterTimeouts,        ///< coalesced waiters abandoning a hung leader
  kBreakerOpens,          ///< circuit transitions closed/half-open → open
  kBreakerProbes,         ///< half-open probe compiles attempted
  kBreakerShortCircuits,  ///< requests bounced straight to the fallback
  kLockTimeouts,          ///< flock deadline → private uncoalesced compile
  kFaultsInjected,        ///< pygb::faultinj decisions that fired
  // Governor (pygb::governor; mirrored from its leaf-module atomics — see
  // the sync in obs.cpp — so counter_value()/snapshots stay coherent).
  kOpsCancelled,          ///< operations aborted by Governor::cancel()
  kOpsDeadlineExceeded,   ///< operations aborted at PYGB_OP_TIMEOUT_MS
  kMemBudgetRejections,   ///< charges refused at PYGB_MEM_LIMIT_BYTES
  kMemPeakBytes,          ///< high-water mark of governed memory charges
  // Postmortem half (this PR): mirrored from pygb::flightrec / written by
  // the crash handler (counter_add is a lock-free fetch_add, AS-safe).
  kFlightEvents,          ///< events recorded by the flight recorder
  kCrashReports,          ///< crash reports written by pygb::crash
  // Lazy op DAG / fusion planner (pygb::fusion, pygb/plan.cpp).
  kFusionDeferred,        ///< assignments recorded on a lazy DAG
  kFusionFlushes,         ///< planner flushes (materialization points)
  kFusionChains,          ///< fused chains dispatched by the planner
  kFusionFusedStatements, ///< deferred ops executed inside fused chains
  kFusionEagerOps,        ///< deferred ops replayed eagerly at flush
  kFusionDce,             ///< dead intermediate writes eliminated
  // Backend axis (gbtl/ops/mxv.hpp): direction-optimized mxv decisions,
  // mirrored from the gbtl pool's flight-note routing layer so choices
  // made inside dlopen'd modules are counted too.
  kMxvPushDecisions,      ///< simd mxv/vxm chose the push (scatter) kernel
  kMxvPullDecisions,      ///< simd mxv/vxm pulled over the cached transpose
  // pygb_serve (src/serve, docs/SERVING.md): the server's load-shedding
  // ledger. Every accepted request lands in exactly one of
  // admitted-and-finished / rejected / cancelled, so dashboards can prove
  // "degraded, never died" from these alone.
  kServeAdmitted,         ///< requests admitted past admission control
  kServeRejected,         ///< typed Overloaded/shutting-down rejections
  kServeCancelled,        ///< requests cancelled (disconnect or drain cap)
  kServeDisconnects,      ///< client connections dropped mid-request
  kServeDrained,          ///< in-flight requests completed during drain
  // Persistent compile service (pygb/jit/compile_service.hpp,
  // docs/ROBUSTNESS.md): the supervisor's accounting ledger. Every request
  // that reaches an enabled service lands in served-or-fallback, and every
  // worker death/hang/corruption lands in restarts (or a breaker trip).
  kCompiledRequests,      ///< compile requests offered to the service
  kCompiledServed,        ///< requests the worker answered (ok OR diagnosed)
  kCompiledFallbacks,     ///< service failures degraded to in-process g++
  kCompiledRestarts,      ///< worker respawns after death/hang/corruption
  kCompiledBreakerTrips,  ///< service breaker opened (restart budget spent)
  // Background tiering (registry kAuto + PYGB_TIER=async).
  kTierAsyncCompiles,     ///< background builds enqueued for cold kAuto keys
  kTierDeferredServes,    ///< requests served from a lower tier while a
                          ///< background build was pending
  kCount_,
};
inline constexpr unsigned kCounterCount =
    static_cast<unsigned>(Counter::kCount_);

namespace detail {
extern std::atomic<std::uint64_t> g_counters[kCounterCount];
}  // namespace detail

inline void counter_add(Counter c, std::uint64_t n = 1) noexcept {
  detail::g_counters[static_cast<unsigned>(c)].fetch_add(
      n, std::memory_order_relaxed);
}
std::uint64_t counter_value(Counter c) noexcept;
const char* counter_name(Counter c) noexcept;
void reset_counters() noexcept;

// ---------------------------------------------------------------------------
// Histograms (metrics_enabled() only)
// ---------------------------------------------------------------------------

/// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds exactly 0.
/// 48 buckets cover nanosecond latencies up to ~1.6 days and byte counts
/// up to ~140 TB.
inline constexpr int kHistogramBuckets = 48;

/// 0 → 0; otherwise bit_width(v) clamped to kHistogramBuckets - 1.
int value_bucket(std::uint64_t v) noexcept;
/// Smallest value that lands in `bucket` (0 for bucket 0).
std::uint64_t bucket_lower_bound(int bucket) noexcept;

/// Record one observation. No-op unless metrics_enabled(); lock-free on
/// the hot path (a thread-local name→histogram cache fronts the one
/// mutex-guarded insert per new name per thread).
void record_value(std::string_view histogram, std::uint64_t value);

/// Aggregated snapshot of one histogram.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Approximate quantile: the lower bound of the bucket holding the
  /// p-quantile observation (p in [0, 1]).
  std::uint64_t percentile(double p) const noexcept;
};

struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::map<std::string, HistogramData> histograms;
};

/// Aggregate all shards on demand (counters + histograms).
MetricsSnapshot metrics_snapshot();
/// Zero counters and histogram buckets (registered names persist).
void reset_metrics() noexcept;

/// Machine-readable dump: {"counters": {...}, "histograms": {...}}.
std::string metrics_to_json();
/// Human-readable end-of-run summary (pygb_cli --stats / PYGB_METRICS=1).
std::string metrics_summary();

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span, Chrome trace_event "X" style.
struct TraceEvent {
  const char* name;        ///< static string (span names are literals)
  std::uint64_t start_ns;  ///< now_ns() at construction
  std::uint64_t dur_ns;
  std::uint32_t tid;       ///< obs-assigned small integer, stable per thread
  std::string args;        ///< pre-rendered JSON members ("\"k\":v,...")
};

/// RAII span: records begin on construction (when tracing is enabled) and
/// emits one TraceEvent into the calling thread's buffer on destruction.
/// When tracing is disabled the constructor is a relaxed load + branch and
/// every other member is a no-op.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) [[unlikely]] {
      start(name);
    }
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }

  Span& attr(const char* key, std::string_view value);
  Span& attr(const char* key, const char* value) {
    return attr(key, std::string_view(value != nullptr ? value : ""));
  }
  Span& attr(const char* key, std::uint64_t value);
  Span& attr(const char* key, std::int64_t value);
  Span& attr(const char* key, int value) {
    return attr(key, static_cast<std::int64_t>(value));
  }
  Span& attr(const char* key, double value);

 private:
  void start(const char* name);
  void finish();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  std::string args_;
};

/// The obs thread id of the calling thread (registers it on first use).
std::uint32_t current_thread_tid();

namespace detail {

/// POD per-thread span-name stack (names are string literals, so storing
/// the pointers is safe). Constant-initialized — no dynamic TLS ctor — so
/// the crash handler may read the crashing thread's copy from a signal
/// context. Depth beyond kSpanStackMax is counted but not stored.
inline constexpr int kSpanStackMax = 16;
struct SpanStackTls {
  const char* names[kSpanStackMax];
  int depth;
};
extern thread_local SpanStackTls g_span_stack;

}  // namespace detail

/// ASYNC-SIGNAL-SAFE: copy the calling thread's active span names
/// (outermost first) into `out`; returns the true depth (may exceed `max`).
int span_stack_unsafe(const char** out, int max) noexcept;

/// Merged snapshot of every thread's buffer, sorted by start time (ties:
/// longer span first, so parents precede children).
std::vector<TraceEvent> collect_trace_events();
void clear_trace_events();
std::size_t trace_event_count();

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// The collected events as a Chrome trace_event JSON document (complete
/// "X" events, microsecond timestamps) loadable in Perfetto.
std::string chrome_trace_json();
/// Write chrome_trace_json() to `path`; false (and *error) on IO failure.
bool write_chrome_trace(const std::string& path, std::string* error = nullptr);

}  // namespace pygb::obs
