// pygb/obs/export.hpp — fleet-grade metrics export
// (docs/OBSERVABILITY.md).
//
// Two wire formats over the same MetricsSnapshot:
//
//   * metrics_json()       — schema-versioned JSON ("pygb.metrics" v1):
//                            the metrics_to_json() payload wrapped in a
//                            schema envelope plus the flight-recorder
//                            gauges. `pygb_cli --metrics-json`.
//   * metrics_prometheus() — Prometheus text exposition (version 0.0.4):
//                            counters as pygb_<name>_total, log₂
//                            histograms as pygb_<base>_bucket{le=...}
//                            cumulative series with _sum/_count, the
//                            "kernel_ns/<func>/<backend>" family split
//                            into {func,backend} labels.
//                            `pygb_cli --metrics-prom`.
//
// Delivery: on demand (the CLI flags), at exit, and periodically via a
// background flusher — PYGB_METRICS_JSON=<path> / PYGB_METRICS_PROM=<path>
// pick the destinations (written atomically: tmp + rename, so a scraping
// textfile collector never sees a torn file), PYGB_METRICS_INTERVAL_MS
// arms the flusher. Setting either path implicitly enables metrics.
#pragma once

#include <cstdint>
#include <string>

namespace pygb::obs {

/// Schema-versioned JSON snapshot: {"schema":"pygb.metrics",
/// "schema_version":1,"counters":{...},"histograms":{...}}. Counter and
/// histogram keys are the same stable names `pygb_cli --stats-json` and
/// the Prometheus exporter use.
std::string metrics_json();

/// Prometheus text exposition of the same snapshot.
std::string metrics_prometheus();

/// Write `content` to `path` atomically (same-directory tmp + rename).
/// Returns false and fills *error on failure.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

/// Flush the armed destinations (PYGB_METRICS_JSON / PYGB_METRICS_PROM or
/// set_export_paths) once, now. Returns the number of files written.
int flush_metrics_files();

/// Programmatic twin of the env knobs ("" disables a destination).
void set_export_paths(const std::string& json_path,
                      const std::string& prom_path);

/// Start the periodic flusher (idempotent; interval <= 0 is ignored).
void start_metrics_flusher(std::int64_t interval_ms);

/// Arm a last-chance flush on SIGTERM/SIGINT (idempotent). std::atexit
/// never runs when a daemon dies to a termination signal, so a supervised
/// process (systemd stop, Kubernetes preStop, ctest timeout) used to exit
/// with an empty or stale metrics file; this handler flushes the armed
/// destinations, restores the previous disposition, and re-raises — so the
/// exit status still says "killed by SIGTERM" and any outer handler
/// (pygb_serve's own graceful drain installs AFTER this and supersedes it)
/// keeps working. Best effort by design: flushing allocates, which is
/// formally async-signal-unsafe; for a process dying anyway the rare
/// torn-flush (the atomic tmp+rename still never publishes a torn FILE)
/// beats the certain loss of the final snapshot.
void install_termination_flush();

/// Read PYGB_METRICS_JSON / PYGB_METRICS_PROM / PYGB_METRICS_INTERVAL_MS,
/// arm the at-exit flush, the termination-signal flush, and the background
/// flusher. Called by obs::init_from_env().
void init_export_from_env();

}  // namespace pygb::obs
