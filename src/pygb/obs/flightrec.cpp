// pygb/obs/flightrec.cpp — seqlock rings, drain, and the async-signal-safe
// dump (see flightrec.hpp for the design constraints).
#include "pygb/obs/flightrec.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

namespace pygb::flightrec {

namespace {

// Slot word layout (all std::atomic<std::uint64_t>):
//   w0  seq (0 = empty / being rewritten)
//   w1  t_ns
//   w2  v0
//   w3  v1
//   w4  kind<<48 | tid<<32 | a32
//   w5..w7  detail bytes (NUL-padded)
constexpr std::size_t kEventWords = 8;
constexpr std::size_t kDetailWords = 3;
static_assert(kDetailWords * 8 == kDetailBytes);

struct Slot {
  std::atomic<std::uint64_t> w[kEventWords];
};

struct Ring {
  Slot slots[kRingEvents];
  std::atomic<std::uint64_t> cursor{0};  ///< events written by the owner
  std::uint16_t tid = 0;
};

std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_dropped{0};

/// Fixed registry of rings: slots are claimed with a fetch_add and
/// published by storing the pointer (release). Rings are leaked so a
/// ring survives its thread — and so the crash handler can walk them.
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_claims{0};

Ring* register_ring() noexcept {
  const std::size_t idx =
      g_ring_claims.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) return nullptr;
  auto* ring = new (std::nothrow) Ring();
  if (ring == nullptr) return nullptr;
  ring->tid = static_cast<std::uint16_t>(idx + 1);
  g_rings[idx].store(ring, std::memory_order_release);
  return ring;
}

Ring* local_ring() noexcept {
  thread_local Ring* ring = register_ring();
  return ring;
}

std::uint64_t pack_meta(EventKind kind, std::uint16_t tid,
                        std::uint32_t a32) noexcept {
  return (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(tid) << 32) | a32;
}

/// Decode one slot with the seqlock protocol. False on empty/torn slots.
bool read_slot(const Slot& s, Event* out) noexcept {
  const std::uint64_t seq1 = s.w[0].load(std::memory_order_acquire);
  if (seq1 == 0) return false;
  std::uint64_t w[kEventWords];
  for (std::size_t i = 1; i < kEventWords; ++i) {
    w[i] = s.w[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.w[0].load(std::memory_order_relaxed) != seq1) return false;
  out->seq = seq1;
  out->t_ns = w[1];
  out->v0 = w[2];
  out->v1 = w[3];
  out->kind = static_cast<EventKind>((w[4] >> 48) & 0xffff);
  out->tid = static_cast<std::uint16_t>((w[4] >> 32) & 0xffff);
  out->a32 = static_cast<std::uint32_t>(w[4] & 0xffffffffu);
  std::memcpy(out->detail, &w[5], kDetailBytes);
  out->detail[kDetailBytes - 1] = '\0';
  return true;
}

// -- async-signal-safe text helpers -----------------------------------------

void fd_write(int fd, const char* s, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, s, n);
    if (w <= 0) return;
    s += w;
    n -= static_cast<std::size_t>(w);
  }
}

void fd_str(int fd, const char* s) noexcept {
  fd_write(fd, s, std::strlen(s));
}

void fd_u64(int fd, std::uint64_t v) noexcept {
  char buf[24];
  char* p = buf + sizeof buf;
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  fd_str(fd, p);
}

void fd_hex(int fd, std::uint64_t v) noexcept {
  char buf[20];
  char* p = buf + sizeof buf;
  *--p = '\0';
  do {
    *--p = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  fd_str(fd, "0x");
  fd_str(fd, p);
}

}  // namespace

std::uint64_t now_ns() noexcept {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

std::uint64_t fnv1a(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (s != nullptr) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

const char* kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kNone:
      return "none";
    case EventKind::kOpBegin:
      return "op_begin";
    case EventKind::kOpEnd:
      return "op_end";
    case EventKind::kChain:
      return "chain";
    case EventKind::kCompileBegin:
      return "compile_begin";
    case EventKind::kCompileEnd:
      return "compile_end";
    case EventKind::kModuleLoad:
      return "module_load";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kBreaker:
      return "breaker";
    case EventKind::kGovernor:
      return "governor";
    case EventKind::kPool:
      return "pool";
    case EventKind::kFault:
      return "fault";
    case EventKind::kModule:
      return "module";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kFusionPlan:
      return "fusion_plan";
    case EventKind::kServe:
      return "serve";
    case EventKind::kCompiled:
      return "compiled";
  }
  return "?";
}

std::uint32_t backend_code(const char* backend) noexcept {
  if (backend == nullptr) return kBackendUnknown;
  if (std::strcmp(backend, "static") == 0) return kBackendStatic;
  if (std::strcmp(backend, "jit-memory") == 0) return kBackendJitMemory;
  if (std::strcmp(backend, "jit-disk") == 0) return kBackendJitDisk;
  if (std::strcmp(backend, "jit-compile") == 0) return kBackendJitCompile;
  if (std::strcmp(backend, "jit-wait") == 0) return kBackendJitWait;
  if (std::strcmp(backend, "interp") == 0) return kBackendInterp;
  // Tier-deferred serves run the same interpreter kernel; the distinct
  // spelling exists for ResolveInfo, not for the postmortem encoding.
  if (std::strcmp(backend, "interp-tier") == 0) return kBackendInterp;
  return kBackendUnknown;
}

const char* backend_name(std::uint32_t code) noexcept {
  switch (code) {
    case kBackendStatic:
      return "static";
    case kBackendJitMemory:
      return "jit-memory";
    case kBackendJitDisk:
      return "jit-disk";
    case kBackendJitCompile:
      return "jit-compile";
    case kBackendJitWait:
      return "jit-wait";
    case kBackendInterp:
      return "interp";
    default:
      return "?";
  }
}

void record(EventKind kind, const char* detail, std::uint64_t v0,
            std::uint64_t v1, std::uint32_t a32) noexcept {
  Ring* ring = local_ring();
  if (ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t idx =
      ring->cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring->slots[idx & (kRingEvents - 1)];

  std::uint64_t dw[kDetailWords] = {0, 0, 0};
  if (detail != nullptr) {
    char bytes[kDetailBytes] = {};
    std::strncpy(bytes, detail, kDetailBytes - 1);
    std::memcpy(dw, bytes, kDetailBytes);
  }

  // Seqlock write: invalidate, fill, publish. Readers that observe the
  // same nonzero w0 before and after their payload reads got a coherent
  // event; everyone else skips the slot.
  s.w[0].store(0, std::memory_order_release);
  s.w[1].store(now_ns(), std::memory_order_relaxed);
  s.w[2].store(v0, std::memory_order_relaxed);
  s.w[3].store(v1, std::memory_order_relaxed);
  s.w[4].store(pack_meta(kind, ring->tid, a32), std::memory_order_relaxed);
  s.w[5].store(dw[0], std::memory_order_relaxed);
  s.w[6].store(dw[1], std::memory_order_relaxed);
  s.w[7].store(dw[2], std::memory_order_relaxed);
  s.w[0].store(seq, std::memory_order_release);
}

std::uint64_t total_recorded() noexcept {
  return g_seq.load(std::memory_order_relaxed);
}

std::uint64_t total_dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::size_t ring_count() noexcept {
  return std::min(g_ring_claims.load(std::memory_order_relaxed), kMaxRings);
}

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const std::size_t rings = ring_count();
  out.reserve(rings * 8);
  for (std::size_t r = 0; r < rings; ++r) {
    const Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t i = 0; i < kRingEvents; ++i) {
      Event e;
      if (read_slot(ring->slots[i], &e)) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::string format_event(const Event& e) {
  std::string out = "seq=" + std::to_string(e.seq);
  out += " tid=" + std::to_string(e.tid);
  out += " t_us=" + std::to_string(e.t_ns / 1000);
  out += " ";
  out += kind_name(e.kind);
  if (e.detail[0] != '\0') {
    out += " ";
    out += e.detail;
  }
  out += " v0=" + std::to_string(e.v0);
  out += " v1=" + std::to_string(e.v1);
  if (e.kind == EventKind::kOpEnd) {
    out += " backend=";
    out += backend_name(e.a32);
  } else {
    out += " a32=" + std::to_string(e.a32);
  }
  return out;
}

void dump_to_fd(int fd, std::size_t max_per_ring) noexcept {
  const std::size_t rings =
      std::min(g_ring_claims.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t r = 0; r < rings; ++r) {
    const Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t cursor =
        ring->cursor.load(std::memory_order_relaxed);
    if (cursor == 0) continue;
    const std::uint64_t live = cursor < kRingEvents ? cursor : kRingEvents;
    const std::uint64_t take =
        max_per_ring != 0 && max_per_ring < live ? max_per_ring : live;
    // Oldest→newest of the tail, so the last line of each ring is the
    // thread's final recorded act.
    for (std::uint64_t k = take; k > 0; --k) {
      const std::uint64_t idx = (cursor - k) & (kRingEvents - 1);
      Event e;
      if (!read_slot(ring->slots[idx], &e)) continue;
      fd_str(fd, "  seq=");
      fd_u64(fd, e.seq);
      fd_str(fd, " tid=");
      fd_u64(fd, e.tid);
      fd_str(fd, " t_us=");
      fd_u64(fd, e.t_ns / 1000);
      fd_str(fd, " ");
      fd_str(fd, kind_name(e.kind));
      if (e.detail[0] != '\0') {
        fd_str(fd, " ");
        fd_str(fd, e.detail);
      }
      fd_str(fd, " v0=");
      fd_u64(fd, e.v0);
      fd_str(fd, " v1=");
      fd_hex(fd, e.v1);
      if (e.kind == EventKind::kOpEnd) {
        fd_str(fd, " backend=");
        fd_str(fd, backend_name(e.a32));
      } else if (e.a32 != 0) {
        fd_str(fd, " a32=");
        fd_u64(fd, e.a32);
      }
      fd_str(fd, "\n");
    }
  }
}

}  // namespace pygb::flightrec
