// pygb/governor.cpp — see governor.hpp. Leaf implementation: atomics for
// every hot slot, one mutex per context guarding only the (cold) name
// buffers. Event counters (cancels, deadline trips, rejections,
// checkpoints) are process-global aggregates; budgets, deadlines, and
// cancel flags live in the RequestContext they belong to.
#include "pygb/governor.hpp"

#include <chrono>
#include <cstdlib>

#include "pygb/obs/flightrec.hpp"

namespace pygb::governor {

namespace detail {
RequestContext g_default_ctx;
thread_local RequestContext* t_bound = nullptr;
}  // namespace detail

namespace {

// Stats (aggregated across every context).
std::atomic<std::uint64_t> g_ops_cancelled{0};
std::atomic<std::uint64_t> g_ops_deadline_exceeded{0};
std::atomic<std::uint64_t> g_mem_rejections{0};
std::atomic<std::uint64_t> g_checkpoints{0};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The per-op timeout that applies to `ctx`: its own, or the default
/// context's when it never set one (PYGB_OP_TIMEOUT_MS as server default).
std::uint64_t effective_timeout_ms(const RequestContext& ctx) noexcept {
  const std::uint64_t own = ctx.op_timeout_ms();
  if (own != 0 || &ctx == &detail::g_default_ctx) return own;
  return detail::g_default_ctx.op_timeout_ms();
}

/// True when an OpScope should engage on `ctx`: any governance is
/// configured or a fault spec might target the governor site.
bool config_active(const RequestContext& ctx) noexcept {
  return effective_timeout_ms(ctx) != 0 || ctx.mem_limit_bytes() != 0 ||
         detail::g_default_ctx.mem_limit_bytes() != 0 ||
         ctx.cancel_requested() || ctx.armed_relaxed() != 0 ||
         faultinj::armed();
}

/// One env read at static-init time, mirroring faultinj's EnvActivation.
struct EnvActivation {
  EnvActivation() { init_from_env(); }
};
const EnvActivation g_env_activation;

}  // namespace

// -- RequestContext ----------------------------------------------------------

void RequestContext::set_request_deadline_ms(std::uint64_t ms) noexcept {
  if (ms == 0) {
    request_deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t deadline = now_ns() + ms * 1000000u;
  request_deadline_ns_.store(deadline, std::memory_order_relaxed);
  // Arm immediately so checkpoints BETWEEN ops honor the cap too; an
  // OpScope opened later tightens deadline_ns_ to min(op, request).
  deadline_ns_.store(deadline, std::memory_order_relaxed);
  armed_.fetch_or(detail::kDeadlineArmed, std::memory_order_release);
}

std::uint64_t RequestContext::request_deadline_remaining_ms()
    const noexcept {
  const std::uint64_t deadline =
      request_deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) return 0;
  const std::uint64_t now = now_ns();
  if (now >= deadline) return 1;
  const std::uint64_t left_ms = (deadline - now) / 1000000u;
  return left_ms == 0 ? 1 : left_ms;
}

void RequestContext::cancel() noexcept {
  sticky_cancel_.store(true, std::memory_order_relaxed);
  armed_.fetch_or(detail::kCancelArmed, std::memory_order_release);
}

void RequestContext::set_label(const char* label) noexcept {
  std::lock_guard<std::mutex> lock(name_mu_);
  std::size_t i = 0;
  for (; label != nullptr && label[i] != '\0' && i + 1 < sizeof label_; ++i) {
    label_[i] = label[i];
  }
  label_[i] = '\0';
}

void RequestContext::charge(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t used =
      mem_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const std::uint64_t limit = mem_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && used > limit) {
    mem_used_.fetch_sub(bytes, std::memory_order_relaxed);
    g_mem_rejections.fetch_add(1, std::memory_order_relaxed);
    flightrec::record(flightrec::EventKind::kGovernor, "mem_reject", bytes,
                      used);
    const bool is_default = this == &detail::g_default_ctx;
    throw ResourceExhausted(
        "pygb: operation '" + op_label() + "' rejected: charging " +
        std::to_string(bytes) + " bytes would put " + std::to_string(used) +
        " bytes in use, over the " + std::to_string(limit) + "-byte " +
        (is_default ? "budget (PYGB_MEM_LIMIT_BYTES)" : "request budget"));
  }
  // Peak reflects granted charges only.
  std::uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
  while (used > peak && !mem_peak_.compare_exchange_weak(
                            peak, used, std::memory_order_relaxed)) {
  }
}

void RequestContext::uncharge(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  // CAS loop clamped at zero: an unmatched release (a JIT module whose
  // reserve predated PoolApi injection) must not wrap the gauge into a
  // near-2^64 value that rejects everything afterwards.
  std::uint64_t cur = mem_used_.load(std::memory_order_relaxed);
  while (!mem_used_.compare_exchange_weak(
      cur, cur > bytes ? cur - bytes : 0, std::memory_order_relaxed)) {
  }
}

std::string RequestContext::op_label() const {
  std::lock_guard<std::mutex> lock(name_mu_);
  std::string s = op_name_[0] != '\0' ? op_name_ : "<op>";
  if (label_[0] != '\0') {
    s += " [";
    s += label_;
    s += "]";
  }
  return s;
}

std::uint64_t RequestContext::op_elapsed_ms() const noexcept {
  const std::uint64_t start = op_start_ns_.load(std::memory_order_relaxed);
  if (start == 0) return 0;
  const std::uint64_t now = now_ns();
  return now > start ? (now - start) / 1000000u : 0;
}

// -- configuration ----------------------------------------------------------

void set_mem_limit_bytes(std::uint64_t bytes) noexcept {
  detail::g_default_ctx.set_mem_limit_bytes(bytes);
}

std::uint64_t mem_limit_bytes() noexcept {
  return detail::g_default_ctx.mem_limit_bytes();
}

void set_op_timeout_ms(std::uint64_t ms) noexcept {
  detail::g_default_ctx.set_op_timeout_ms(ms);
}

std::uint64_t op_timeout_ms() noexcept {
  return detail::g_default_ctx.op_timeout_ms();
}

void cancel() noexcept {
  RequestContext& ctx = detail::g_default_ctx;
  ctx.oneshot_cancel_.store(true, std::memory_order_relaxed);
  // Arm the in-flight op (if any); an idle cancel is consumed by the next
  // OpScope, which recomputes the armed word from the flag.
  ctx.armed_.fetch_or(detail::kCancelArmed, std::memory_order_release);
}

bool cancel_requested() noexcept {
  return detail::g_default_ctx.oneshot_cancel_.load(
      std::memory_order_relaxed);
}

void init_from_env() {
  if (const char* v = std::getenv("PYGB_MEM_LIMIT_BYTES")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) set_mem_limit_bytes(parsed);
  }
  if (const char* v = std::getenv("PYGB_OP_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) set_op_timeout_ms(parsed);
  }
}

// -- memory budget ----------------------------------------------------------

void mem_reserve(std::uint64_t bytes) {
  if (bytes == 0) return;
  RequestContext* bound = detail::t_bound;
  if (bound != nullptr) bound->charge(bytes);  // per-request budget first
  try {
    detail::g_default_ctx.charge(bytes);  // process-wide budget and gauge
  } catch (...) {
    if (bound != nullptr) bound->uncharge(bytes);
    throw;
  }
}

void mem_release(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  if (RequestContext* bound = detail::t_bound) bound->uncharge(bytes);
  detail::g_default_ctx.uncharge(bytes);
}

// -- checkpoints ------------------------------------------------------------

namespace detail {

void checkpoint_slow() {
  g_checkpoints.fetch_add(1, std::memory_order_relaxed);
  RequestContext& ctx = current_context();

  // Fault injection first: lets chaos tests fire budget/deadline failures
  // at an exact checkpoint (n=K) with no real budget or clock involved.
  if (const auto d = faultinj::check(faultinj::site::kGovernor)) {
    if (d.action == faultinj::Action::kFail) {
      g_mem_rejections.fetch_add(1, std::memory_order_relaxed);
      throw ResourceExhausted("pygb: operation '" + ctx.op_label() +
                              "': injected budget exhaustion at checkpoint "
                              "(faultinj governor:fail)");
    }
    g_ops_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded("pygb: operation '" + ctx.op_label() +
                           "': injected deadline at checkpoint (faultinj "
                           "governor:" +
                           std::string(faultinj::to_string(d.action)) + ")");
  }

  const std::uint32_t armed = ctx.armed_.load(std::memory_order_acquire);
  if (armed & kCancelArmed) {
    if (ctx.sticky_cancel_.load(std::memory_order_relaxed)) {
      // Request-level cancel (client disconnect): never consumed — every
      // op in this context dies until the context does. Counted once.
      if (!ctx.sticky_counted_.exchange(true, std::memory_order_relaxed)) {
        g_ops_cancelled.fetch_add(1, std::memory_order_relaxed);
        flightrec::record(flightrec::EventKind::kGovernor, "cancel",
                          ctx.op_elapsed_ms());
      }
      throw Cancelled("pygb: operation '" + ctx.op_label() +
                      "' cancelled (request aborted) after " +
                      std::to_string(ctx.op_elapsed_ms()) + " ms");
    }
    if (ctx.depth_.load(std::memory_order_acquire) == 0) {
      // No OpScope owns the armed word (a native-tier gbtl call, say):
      // consume the pending cancel here, or clear a stale bit left by an
      // already-consumed request so it can't cancel every op forever.
      bool expected = true;
      if (ctx.oneshot_cancel_.compare_exchange_strong(
              expected, false, std::memory_order_relaxed)) {
        ctx.armed_.fetch_and(~kCancelArmed, std::memory_order_release);
        g_ops_cancelled.fetch_add(1, std::memory_order_relaxed);
        throw Cancelled("pygb: operation '" + ctx.op_label() +
                        "' cancelled after " +
                        std::to_string(ctx.op_elapsed_ms()) + " ms");
      }
      ctx.armed_.fetch_and(~kCancelArmed, std::memory_order_release);
    } else {
      // Scoped op: the winner consumes the request (exactly one op per
      // cancel) and counts the event; every thread of the op still throws
      // until the outermost scope exit disarms the word.
      if (!ctx.op_aborted_.exchange(true, std::memory_order_relaxed)) {
        ctx.oneshot_cancel_.store(false, std::memory_order_relaxed);
        g_ops_cancelled.fetch_add(1, std::memory_order_relaxed);
        flightrec::record(flightrec::EventKind::kGovernor, "cancel",
                          ctx.op_elapsed_ms());
      }
      throw Cancelled("pygb: operation '" + ctx.op_label() +
                      "' cancelled after " +
                      std::to_string(ctx.op_elapsed_ms()) + " ms");
    }
  }
  if (armed & kDeadlineArmed) {
    const std::uint64_t deadline =
        ctx.deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && now_ns() >= deadline) {
      if (!ctx.op_aborted_.exchange(true, std::memory_order_relaxed)) {
        g_ops_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        flightrec::record(flightrec::EventKind::kGovernor, "deadline",
                          ctx.op_elapsed_ms());
      }
      const std::uint64_t req =
          ctx.request_deadline_ns_.load(std::memory_order_relaxed);
      const bool request_cap = req != 0 && deadline == req;
      throw DeadlineExceeded(
          "pygb: operation '" + ctx.op_label() + "': " +
          (request_cap
               ? std::string("request deadline")
               : "deadline of " +
                     std::to_string(effective_timeout_ms(ctx)) +
                     " ms (PYGB_OP_TIMEOUT_MS)") +
          " exceeded after " + std::to_string(ctx.op_elapsed_ms()) + " ms");
    }
  }
}

}  // namespace detail

// -- OpScope ----------------------------------------------------------------

OpScope::OpScope(const char* op_name) {
  RequestContext& ctx = current_context();
  if (!config_active(ctx)) return;
  ctx_ = &ctx;
  if (ctx.depth_.fetch_add(1, std::memory_order_acq_rel) != 0) return;

  // Outermost scope in this context: latch the name, the start time, and
  // the armed word.
  {
    std::lock_guard<std::mutex> lock(ctx.name_mu_);
    std::size_t i = 0;
    for (; op_name != nullptr && op_name[i] != '\0' &&
           i + 1 < sizeof ctx.op_name_;
         ++i) {
      ctx.op_name_[i] = op_name[i];
    }
    ctx.op_name_[i] = '\0';
  }
  const std::uint64_t now = now_ns();
  ctx.op_start_ns_.store(now, std::memory_order_relaxed);
  ctx.op_aborted_.store(false, std::memory_order_relaxed);

  std::uint32_t armed = 0;
  std::uint64_t deadline = 0;
  const std::uint64_t timeout = effective_timeout_ms(ctx);
  if (timeout != 0) deadline = now + timeout * 1000000u;
  const std::uint64_t req =
      ctx.request_deadline_ns_.load(std::memory_order_relaxed);
  if (req != 0 && (deadline == 0 || req < deadline)) deadline = req;
  ctx.deadline_ns_.store(deadline, std::memory_order_relaxed);
  if (deadline != 0) armed |= detail::kDeadlineArmed;
  if (ctx.cancel_requested()) armed |= detail::kCancelArmed;
  ctx.armed_.store(armed, std::memory_order_release);
}

OpScope::~OpScope() {
  if (ctx_ == nullptr) return;
  RequestContext& ctx = *ctx_;
  if (ctx.depth_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Outermost exit: disarm the per-op state so an aborted op can't poison
  // the next one. A one-shot cancel that fired mid-op was already consumed
  // by the checkpoint winner; one that never got a checkpoint dies here
  // too — the op it targeted has completed. Request-LEVEL state (the
  // whole-request deadline, a sticky cancel) stays armed: those outlive
  // individual ops by design.
  const std::uint64_t req =
      ctx.request_deadline_ns_.load(std::memory_order_relaxed);
  std::uint32_t armed = 0;
  if (req != 0) armed |= detail::kDeadlineArmed;
  if (ctx.sticky_cancel_.load(std::memory_order_relaxed)) {
    armed |= detail::kCancelArmed;
  }
  ctx.armed_.store(armed, std::memory_order_release);
  ctx.deadline_ns_.store(req, std::memory_order_relaxed);
  ctx.op_start_ns_.store(0, std::memory_order_relaxed);
  ctx.op_aborted_.store(false, std::memory_order_relaxed);
  ctx.oneshot_cancel_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ctx.name_mu_);
  ctx.op_name_[0] = '\0';
}

// -- introspection ----------------------------------------------------------

Stats stats() noexcept {
  Stats s;
  s.ops_cancelled = g_ops_cancelled.load(std::memory_order_relaxed);
  s.ops_deadline_exceeded =
      g_ops_deadline_exceeded.load(std::memory_order_relaxed);
  s.mem_budget_rejections = g_mem_rejections.load(std::memory_order_relaxed);
  s.mem_peak_bytes = detail::g_default_ctx.mem_peak_bytes();
  s.mem_current_bytes = detail::g_default_ctx.mem_current_bytes();
  s.checkpoints = g_checkpoints.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() noexcept {
  g_ops_cancelled.store(0, std::memory_order_relaxed);
  g_ops_deadline_exceeded.store(0, std::memory_order_relaxed);
  g_mem_rejections.store(0, std::memory_order_relaxed);
  g_checkpoints.store(0, std::memory_order_relaxed);
  // The peak restarts from the live gauge (which is NOT a resettable
  // counter — it tracks charges still held).
  RequestContext& ctx = detail::g_default_ctx;
  ctx.mem_peak_.store(ctx.mem_used_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

std::string current_op() {
  RequestContext& ctx = detail::g_default_ctx;
  std::lock_guard<std::mutex> lock(ctx.name_mu_);
  return std::string(ctx.op_name_);
}

void current_op_unsafe(char* buf, std::size_t n) noexcept {
  if (buf == nullptr || n == 0) return;
  // Deliberately lock-free (see header): raw byte copy, stop at the
  // buffer edge either side.
  const RequestContext& ctx = current_context();
  std::size_t i = 0;
  for (; i + 1 < n && i + 1 < sizeof ctx.op_name_ && ctx.op_name_[i] != '\0';
       ++i) {
    buf[i] = ctx.op_name_[i];
  }
  buf[i] = '\0';
}

}  // namespace pygb::governor
