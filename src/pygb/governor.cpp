// pygb/governor.cpp — see governor.hpp. Leaf implementation: atomics for
// every hot slot, one mutex guarding only the (cold) op-name buffer.
#include "pygb/governor.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "pygb/obs/flightrec.hpp"

namespace pygb::governor {

namespace detail {
std::atomic<std::uint32_t> g_armed{0};
}  // namespace detail

namespace {

// Configuration.
std::atomic<std::uint64_t> g_mem_limit{0};   // 0 = unlimited
std::atomic<std::uint64_t> g_timeout_ms{0};  // 0 = no deadline
std::atomic<bool> g_cancel{false};

// Memory accounting (always on; the gauge feeds mem_peak_bytes).
std::atomic<std::uint64_t> g_mem_used{0};
std::atomic<std::uint64_t> g_mem_peak{0};

// Stats.
std::atomic<std::uint64_t> g_ops_cancelled{0};
std::atomic<std::uint64_t> g_ops_deadline_exceeded{0};
std::atomic<std::uint64_t> g_mem_rejections{0};
std::atomic<std::uint64_t> g_checkpoints{0};

// Per-operation state, owned by the outermost OpScope.
std::atomic<int> g_depth{0};
std::atomic<std::uint64_t> g_deadline_ns{0};  // absolute steady-clock; 0=off
std::atomic<std::uint64_t> g_op_start_ns{0};
// First-abort latch: with 4 pool workers all tripping the same deadline,
// only the winner counts the event (one op, one increment); the rest still
// throw so the whole operation unwinds fast.
std::atomic<bool> g_op_aborted{false};

// Cold: op name for error messages. Fixed buffer under a mutex so the
// checkpoint slow path never allocates while reading it.
std::mutex g_name_mu;
char g_op_name[128] = {0};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string op_label() {
  std::lock_guard<std::mutex> lock(g_name_mu);
  return g_op_name[0] ? std::string(g_op_name) : std::string("<op>");
}

std::uint64_t elapsed_ms() noexcept {
  const std::uint64_t start = g_op_start_ns.load(std::memory_order_relaxed);
  if (start == 0) return 0;
  const std::uint64_t now = now_ns();
  return now > start ? (now - start) / 1000000u : 0;
}

/// True when an OpScope should engage: any governance is configured or a
/// fault spec might target the governor site.
bool config_active() noexcept {
  return g_timeout_ms.load(std::memory_order_relaxed) != 0 ||
         g_mem_limit.load(std::memory_order_relaxed) != 0 ||
         g_cancel.load(std::memory_order_relaxed) ||
         faultinj::armed();
}

/// One env read at static-init time, mirroring faultinj's EnvActivation.
struct EnvActivation {
  EnvActivation() { init_from_env(); }
};
const EnvActivation g_env_activation;

}  // namespace

// -- configuration ---------------------------------------------------------

void set_mem_limit_bytes(std::uint64_t bytes) noexcept {
  g_mem_limit.store(bytes, std::memory_order_relaxed);
}

std::uint64_t mem_limit_bytes() noexcept {
  return g_mem_limit.load(std::memory_order_relaxed);
}

void set_op_timeout_ms(std::uint64_t ms) noexcept {
  g_timeout_ms.store(ms, std::memory_order_relaxed);
}

std::uint64_t op_timeout_ms() noexcept {
  return g_timeout_ms.load(std::memory_order_relaxed);
}

void cancel() noexcept {
  g_cancel.store(true, std::memory_order_relaxed);
  // Arm the in-flight op (if any); an idle cancel is consumed by the next
  // OpScope, which recomputes the armed word from g_cancel.
  detail::g_armed.fetch_or(detail::kCancelArmed, std::memory_order_release);
}

bool cancel_requested() noexcept {
  return g_cancel.load(std::memory_order_relaxed);
}

void init_from_env() {
  if (const char* v = std::getenv("PYGB_MEM_LIMIT_BYTES")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) set_mem_limit_bytes(parsed);
  }
  if (const char* v = std::getenv("PYGB_OP_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) set_op_timeout_ms(parsed);
  }
}

// -- memory budget ---------------------------------------------------------

void mem_reserve(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t used =
      g_mem_used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const std::uint64_t limit = g_mem_limit.load(std::memory_order_relaxed);
  if (limit != 0 && used > limit) {
    g_mem_used.fetch_sub(bytes, std::memory_order_relaxed);
    g_mem_rejections.fetch_add(1, std::memory_order_relaxed);
    flightrec::record(flightrec::EventKind::kGovernor, "mem_reject", bytes,
                      used);
    throw ResourceExhausted(
        "pygb: operation '" + op_label() + "' rejected: charging " +
        std::to_string(bytes) + " bytes would put " +
        std::to_string(used) + " bytes in use, over the " +
        std::to_string(limit) + "-byte budget (PYGB_MEM_LIMIT_BYTES)");
  }
  // Peak reflects granted charges only.
  std::uint64_t peak = g_mem_peak.load(std::memory_order_relaxed);
  while (used > peak && !g_mem_peak.compare_exchange_weak(
                            peak, used, std::memory_order_relaxed)) {
  }
}

void mem_release(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  // CAS loop clamped at zero: an unmatched release (a JIT module whose
  // reserve predated PoolApi injection) must not wrap the gauge into a
  // near-2^64 value that rejects everything afterwards.
  std::uint64_t cur = g_mem_used.load(std::memory_order_relaxed);
  while (!g_mem_used.compare_exchange_weak(
      cur, cur > bytes ? cur - bytes : 0, std::memory_order_relaxed)) {
  }
}

// -- checkpoints ------------------------------------------------------------

namespace detail {

void checkpoint_slow() {
  g_checkpoints.fetch_add(1, std::memory_order_relaxed);

  // Fault injection first: lets chaos tests fire budget/deadline failures
  // at an exact checkpoint (n=K) with no real budget or clock involved.
  if (const auto d = faultinj::check(faultinj::site::kGovernor)) {
    if (d.action == faultinj::Action::kFail) {
      g_mem_rejections.fetch_add(1, std::memory_order_relaxed);
      throw ResourceExhausted("pygb: operation '" + op_label() +
                              "': injected budget exhaustion at checkpoint "
                              "(faultinj governor:fail)");
    }
    g_ops_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded("pygb: operation '" + op_label() +
                           "': injected deadline at checkpoint (faultinj "
                           "governor:" +
                           std::string(faultinj::to_string(d.action)) + ")");
  }

  const std::uint32_t armed = g_armed.load(std::memory_order_acquire);
  if (armed & kCancelArmed) {
    if (g_depth.load(std::memory_order_acquire) == 0) {
      // No OpScope owns the armed word (a native-tier gbtl call, say):
      // consume the pending cancel here, or clear a stale bit left by an
      // already-consumed request so it can't cancel every op forever.
      bool expected = true;
      if (g_cancel.compare_exchange_strong(expected, false,
                                           std::memory_order_relaxed)) {
        g_armed.fetch_and(~kCancelArmed, std::memory_order_release);
        g_ops_cancelled.fetch_add(1, std::memory_order_relaxed);
        throw Cancelled("pygb: operation '" + op_label() +
                        "' cancelled after " + std::to_string(elapsed_ms()) +
                        " ms");
      }
      g_armed.fetch_and(~kCancelArmed, std::memory_order_release);
    } else {
      // Scoped op: the winner consumes the request (exactly one op per
      // cancel) and counts the event; every thread of the op still throws
      // until the outermost scope exit disarms the word.
      if (!g_op_aborted.exchange(true, std::memory_order_relaxed)) {
        g_cancel.store(false, std::memory_order_relaxed);
        g_ops_cancelled.fetch_add(1, std::memory_order_relaxed);
        flightrec::record(flightrec::EventKind::kGovernor, "cancel",
                          elapsed_ms());
      }
      throw Cancelled("pygb: operation '" + op_label() +
                      "' cancelled after " + std::to_string(elapsed_ms()) +
                      " ms");
    }
  }
  if (armed & kDeadlineArmed) {
    const std::uint64_t deadline =
        g_deadline_ns.load(std::memory_order_relaxed);
    if (deadline != 0 && now_ns() >= deadline) {
      if (!g_op_aborted.exchange(true, std::memory_order_relaxed)) {
        g_ops_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        flightrec::record(flightrec::EventKind::kGovernor, "deadline",
                          elapsed_ms());
      }
      throw DeadlineExceeded(
          "pygb: operation '" + op_label() + "': deadline of " +
          std::to_string(g_timeout_ms.load(std::memory_order_relaxed)) +
          " ms (PYGB_OP_TIMEOUT_MS) exceeded after " +
          std::to_string(elapsed_ms()) + " ms");
    }
  }
}

}  // namespace detail

// -- OpScope ----------------------------------------------------------------

OpScope::OpScope(const char* op_name) {
  if (!config_active()) return;
  active_ = true;
  if (g_depth.fetch_add(1, std::memory_order_acq_rel) != 0) return;

  // Outermost scope: latch the name, the start time, and the armed word.
  {
    std::lock_guard<std::mutex> lock(g_name_mu);
    std::size_t i = 0;
    for (; op_name != nullptr && op_name[i] != '\0' &&
           i + 1 < sizeof g_op_name;
         ++i) {
      g_op_name[i] = op_name[i];
    }
    g_op_name[i] = '\0';
  }
  const std::uint64_t now = now_ns();
  g_op_start_ns.store(now, std::memory_order_relaxed);
  g_op_aborted.store(false, std::memory_order_relaxed);

  std::uint32_t armed = 0;
  const std::uint64_t timeout = g_timeout_ms.load(std::memory_order_relaxed);
  if (timeout != 0) {
    g_deadline_ns.store(now + timeout * 1000000u, std::memory_order_relaxed);
    armed |= detail::kDeadlineArmed;
  } else {
    g_deadline_ns.store(0, std::memory_order_relaxed);
  }
  if (g_cancel.load(std::memory_order_relaxed)) {
    armed |= detail::kCancelArmed;
  }
  detail::g_armed.store(armed, std::memory_order_release);
}

OpScope::~OpScope() {
  if (!active_) return;
  if (g_depth.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Outermost exit: disarm everything so an aborted op can't poison the
  // next one. A cancel that fired mid-op was already consumed by the
  // checkpoint winner; one that never got a checkpoint dies here too —
  // the op it targeted has completed.
  detail::g_armed.store(0, std::memory_order_release);
  g_deadline_ns.store(0, std::memory_order_relaxed);
  g_op_start_ns.store(0, std::memory_order_relaxed);
  g_op_aborted.store(false, std::memory_order_relaxed);
  g_cancel.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_name_mu);
  g_op_name[0] = '\0';
}

// -- introspection ----------------------------------------------------------

Stats stats() noexcept {
  Stats s;
  s.ops_cancelled = g_ops_cancelled.load(std::memory_order_relaxed);
  s.ops_deadline_exceeded =
      g_ops_deadline_exceeded.load(std::memory_order_relaxed);
  s.mem_budget_rejections = g_mem_rejections.load(std::memory_order_relaxed);
  s.mem_peak_bytes = g_mem_peak.load(std::memory_order_relaxed);
  s.mem_current_bytes = g_mem_used.load(std::memory_order_relaxed);
  s.checkpoints = g_checkpoints.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() noexcept {
  g_ops_cancelled.store(0, std::memory_order_relaxed);
  g_ops_deadline_exceeded.store(0, std::memory_order_relaxed);
  g_mem_rejections.store(0, std::memory_order_relaxed);
  g_checkpoints.store(0, std::memory_order_relaxed);
  // The peak restarts from the live gauge (which is NOT a resettable
  // counter — it tracks charges still held).
  g_mem_peak.store(g_mem_used.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

std::string current_op() {
  std::lock_guard<std::mutex> lock(g_name_mu);
  return std::string(g_op_name);
}

void current_op_unsafe(char* buf, std::size_t n) noexcept {
  if (buf == nullptr || n == 0) return;
  // Deliberately lock-free (see header): raw byte copy, stop at the
  // buffer edge either side.
  std::size_t i = 0;
  for (; i + 1 < n && i + 1 < sizeof g_op_name && g_op_name[i] != '\0';
       ++i) {
    buf[i] = g_op_name[i];
  }
  buf[i] = '\0';
}

}  // namespace pygb::governor
