// pygb/interp_sim.hpp — the CPython-overhead model (DESIGN.md substitution
// #1). Real PyGB pays Python magic-method dispatch, kwargs hashing, and
// importlib lookup on every operation. Our DSL performs the same steps
// natively and therefore faster; to reproduce the *magnitude* of the
// paper's "Python loops" series, benchmarks enable a calibrated busy-wait
// per dispatched operation.
//
// Configuration: PYGB_INTERP_NS environment variable, or
// set_interp_overhead_ns(). Default 0 (disabled) — the library itself never
// slows anything down; only the Fig. 10 benches turn this on.
#pragma once

#include <cstdint>

namespace pygb {

/// Current per-dispatch overhead in nanoseconds (0 = disabled).
std::int64_t interp_overhead_ns();

/// Override the overhead (takes precedence over the environment variable).
void set_interp_overhead_ns(std::int64_t ns);

namespace detail {

/// Busy-wait for the configured overhead; no-op when disabled.
void interp_pause();

}  // namespace detail

}  // namespace pygb
