// pygb/eval.cpp — the dispatch stage of Fig. 9: assemble an OpRequest from
// an expression node + target, coerce masks to boolean containers, resolve
// a kernel through the module registry (static / JIT / interp), and invoke
// it. Also implements the assignment proxies of container.hpp and the
// CPython-overhead model of interp_sim.hpp.
#include "pygb/eval.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "gbtl/detail/backend.hpp"
#include "pygb/context.hpp"
#include "pygb/governor.hpp"
#include "pygb/interp_sim.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"
#include "pygb/plan.hpp"

namespace pygb {

// ---------------------------------------------------------------------------
// interp_sim
// ---------------------------------------------------------------------------

namespace {

std::int64_t& interp_ns_slot() {
  static std::int64_t ns = [] {
    const char* v = std::getenv("PYGB_INTERP_NS");
    return (v != nullptr && *v != '\0') ? std::atoll(v)
                                        : static_cast<long long>(0);
  }();
  return ns;
}

}  // namespace

std::int64_t interp_overhead_ns() { return interp_ns_slot(); }
void set_interp_overhead_ns(std::int64_t ns) { interp_ns_slot() = ns; }

namespace detail {

void interp_pause() {
  const std::int64_t ns = interp_ns_slot();
  if (ns <= 0) return;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  // Busy-wait: models CPython's dispatch work (which burns CPU, not sleep).
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace detail

namespace detail {

namespace {

using jit::KernelArgs;
using jit::MaskKind;
using jit::OpRequest;

// --- mask coercion ----------------------------------------------------------

/// "its data will be coerced to boolean values" (§III): non-bool mask
/// containers are copied into bool containers for the kernel ABI; bool
/// masks pass through pointer-only.
struct PreparedMatrixMask {
  MaskKind kind = MaskKind::kNone;
  const void* ptr = nullptr;
  std::shared_ptr<gbtl::Matrix<bool>> owned;
};

struct PreparedVectorMask {
  MaskKind kind = MaskKind::kNone;
  const void* ptr = nullptr;
  std::shared_ptr<gbtl::Vector<bool>> owned;
};

PreparedMatrixMask prepare_mask(const MatrixMaskArg& arg) {
  PreparedMatrixMask out;
  if (arg.kind == MatrixMaskArg::Kind::kNone) return out;
  out.kind = arg.kind == MatrixMaskArg::Kind::kPlain ? MaskKind::kMatrix
                                                     : MaskKind::kMatrixComp;
  const Matrix& m = *arg.m;
  if (m.dtype() == DType::kBool) {
    out.ptr = m.raw();
    return out;
  }
  auto coerced =
      std::make_shared<gbtl::Matrix<bool>>(m.nrows(), m.ncols());
  visit_dtype(m.dtype(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    const auto& src = m.typed<T>();
    typename gbtl::Matrix<bool>::Row row;
    for (gbtl::IndexType i = 0; i < src.nrows(); ++i) {
      const auto& r = src.row(i);
      if (r.empty()) continue;
      row.clear();
      row.reserve(r.size());
      for (const auto& [j, v] : r) {
        row.emplace_back(j, static_cast<bool>(v));
      }
      coerced->setRow(i, std::move(row));
      row = {};
    }
  });
  out.owned = std::move(coerced);
  out.ptr = out.owned.get();
  return out;
}

PreparedVectorMask prepare_mask(const VectorMaskArg& arg) {
  PreparedVectorMask out;
  if (arg.kind == VectorMaskArg::Kind::kNone) return out;
  out.kind = arg.kind == VectorMaskArg::Kind::kPlain ? MaskKind::kVector
                                                     : MaskKind::kVectorComp;
  const Vector& m = *arg.m;
  if (m.dtype() == DType::kBool) {
    out.ptr = m.raw();
    return out;
  }
  auto coerced = std::make_shared<gbtl::Vector<bool>>(m.size());
  visit_dtype(m.dtype(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    const auto& src = m.typed<T>();
    for (gbtl::IndexType i = 0; i < src.size(); ++i) {
      if (src.has_unchecked(i)) {
        coerced->set_unchecked(i,
                               static_cast<bool>(src.value_unchecked(i)));
      }
    }
  });
  out.owned = std::move(coerced);
  out.ptr = out.owned.get();
  return out;
}

void set_scalar_channels(KernelArgs& args, const Scalar& v) {
  args.scalar_f = v.to_double();
  args.scalar_i = v.to_int64();
}

Scalar scalar_from_slot(DType dt, const jit::ScalarSlot& slot) {
  return visit_dtype(dt, [&](auto tag) {
    using T = typename decltype(tag)::type;
    if constexpr (std::is_floating_point_v<T>) {
      return Scalar(static_cast<T>(slot.f));
    } else if constexpr (std::is_signed_v<T> || std::is_same_v<T, bool>) {
      return Scalar(static_cast<T>(slot.i));
    } else {
      return Scalar(static_cast<T>(slot.u));
    }
  });
}

/// Populate request/args fields from the expression node's operands.
void fill_from_node(OpRequest& req, KernelArgs& args, const ExprNode& node) {
  using Kind = ExprNode::Kind;
  switch (node.kind) {
    case Kind::kMxM:
      req.func = jit::func::kMxM;
      req.a = node.ma->dtype();
      req.b = node.mb->dtype();
      req.a_transposed = node.a_transposed;
      req.b_transposed = node.b_transposed;
      req.semiring = node.semiring;
      args.a = node.ma->raw();
      args.b = node.mb->raw();
      break;
    case Kind::kMxV:
      req.func = jit::func::kMxV;
      req.a = node.ma->dtype();
      req.b = node.vb->dtype();
      req.a_transposed = node.a_transposed;
      req.semiring = node.semiring;
      args.a = node.ma->raw();
      args.b = node.vb->raw();
      break;
    case Kind::kVxM:
      req.func = jit::func::kVxM;
      req.a = node.va->dtype();
      req.b = node.mb->dtype();
      req.b_transposed = node.b_transposed;
      req.semiring = node.semiring;
      args.a = node.va->raw();
      args.b = node.mb->raw();
      break;
    case Kind::kEWiseAddMM:
    case Kind::kEWiseMultMM:
      req.func = node.kind == Kind::kEWiseAddMM ? jit::func::kEWiseAddMM
                                                : jit::func::kEWiseMultMM;
      req.a = node.ma->dtype();
      req.b = node.mb->dtype();
      req.a_transposed = node.a_transposed;
      req.b_transposed = node.b_transposed;
      req.binary_op = node.binary_op;
      req.user_binary = node.user_binary;
      args.a = node.ma->raw();
      args.b = node.mb->raw();
      break;
    case Kind::kEWiseAddVV:
    case Kind::kEWiseMultVV:
      req.func = node.kind == Kind::kEWiseAddVV ? jit::func::kEWiseAddVV
                                                : jit::func::kEWiseMultVV;
      req.a = node.va->dtype();
      req.b = node.vb->dtype();
      req.binary_op = node.binary_op;
      req.user_binary = node.user_binary;
      args.a = node.va->raw();
      args.b = node.vb->raw();
      break;
    case Kind::kApplyM:
    case Kind::kMatrixRef:
      req.func = jit::func::kApplyM;
      req.a = node.ma->dtype();
      req.a_transposed = node.a_transposed;
      if (node.user_unary) {
        req.user_unary = node.user_unary;
      } else {
        req.unary_op = node.kind == Kind::kApplyM
                           ? node.unary_op
                           : UnaryOp(UnaryOpName::kIdentity);
        if (req.unary_op->is_bound()) {
          set_scalar_channels(args, req.unary_op->bound_value());
        }
      }
      args.a = node.ma->raw();
      break;
    case Kind::kApplyV:
    case Kind::kVectorRef:
      req.func = jit::func::kApplyV;
      req.a = node.va->dtype();
      if (node.user_unary) {
        req.user_unary = node.user_unary;
      } else {
        req.unary_op = node.kind == Kind::kApplyV
                           ? node.unary_op
                           : UnaryOp(UnaryOpName::kIdentity);
        if (req.unary_op->is_bound()) {
          set_scalar_channels(args, req.unary_op->bound_value());
        }
      }
      args.a = node.va->raw();
      break;
    case Kind::kReduceMV:
      req.func = jit::func::kReduceMV;
      req.a = node.ma->dtype();
      req.a_transposed = node.a_transposed;
      req.monoid = node.monoid;
      args.a = node.ma->raw();
      break;
    case Kind::kTransposeM:
      req.func = jit::func::kTransposeM;
      req.a = node.ma->dtype();
      req.a_transposed = node.a_transposed;
      args.a = node.ma->raw();
      break;
  }
}

/// True when the expression node reads the container at `raw` (the
/// &out == &in check for `w = A @ w` / `C = C + A` shapes).
bool node_reads(const ExprNode& node, const void* raw) {
  return (node.ma && node.ma->raw() == raw) ||
         (node.mb && node.mb->raw() == raw) ||
         (node.va && node.va->raw() == raw) ||
         (node.vb && node.vb->raw() == raw);
}

// Commit half of the aliased-output staging: move the staged result into
// the target's underlying container, so every shared handle observes it.
void move_contents(Matrix& target, Matrix& staged) {
  visit_dtype(target.dtype(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    target.typed<T>() = std::move(staged.typed<T>());
  });
}

void move_contents(Vector& target, Vector& staged) {
  visit_dtype(target.dtype(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    target.typed<T>() = std::move(staged.typed<T>());
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// dispatch core
// ---------------------------------------------------------------------------

void dispatch(OpRequest& req, KernelArgs& args) {
  args.request = &req;
  interp_pause();  // CPython dispatch-cost model (0 = off)

  // Resolve the kernel-backend axis BEFORE the registry lookup: req.key()
  // carries the backend, so a compiled module is permanently bound to one
  // implementation strategy. Innermost BackendHint wins over the process
  // default. The BackendScope around the kernel covers the in-process
  // serving paths (static/interp), which read the thread's active backend
  // at run time; JIT modules carry their own baked scope and simply nest
  // an identical override.
  req.backend = current_backend().value_or(gbtl::detail::default_backend());

  // Fast path: with observability off this is one relaxed load + branch
  // on top of the seed dispatch sequence. The flight recorder stays ON even
  // here — it is the always-on black box — but its cost is a handful of
  // relaxed stores per op, not a span allocation.
  if (!obs::tracing_enabled() && !obs::metrics_enabled()) [[likely]] {
    jit::ResolveInfo info;
    jit::KernelFn fn = jit::Registry::instance().get(req, &info);
    const std::uint64_t t0 = flightrec::now_ns();
    // Governor scope around kernel EXECUTION only: resolution (which may
    // include a whole g++ run) is already deadline-bounded by the PR 4
    // PYGB_JIT_TIMEOUT_MS machinery; PYGB_OP_TIMEOUT_MS caps the compute.
    governor::OpScope governed(req.func.c_str());
    gbtl::detail::BackendScope bscope(req.backend);
    fn(&args);
    flightrec::record(flightrec::EventKind::kOpEnd, req.func.c_str(),
                      flightrec::now_ns() - t0,
                      flightrec::fnv1a(info.key.c_str()),
                      flightrec::backend_code(info.backend));
    return;
  }

  obs::Span dispatch_span("pygb.dispatch");
  dispatch_span.attr("func", req.func);
  dispatch_span.attr("kernel_backend", gbtl::detail::backend_name(req.backend));
  jit::ResolveInfo info;
  jit::KernelFn fn;
  {
    obs::Span lookup_span("registry.get");
    fn = jit::Registry::instance().get(req, &info);
    lookup_span.attr("backend", info.backend).attr("key", info.key);
  }
  dispatch_span.attr("backend", info.backend);
  {
    obs::Span kernel_span("kernel");
    kernel_span.attr("func", req.func).attr("backend", info.backend);
    const std::uint64_t t0 = obs::now_ns();
    governor::OpScope governed(req.func.c_str());
    gbtl::detail::BackendScope bscope(req.backend);
    fn(&args);
    const std::uint64_t dur = obs::now_ns() - t0;
    obs::record_value("kernel_ns/" + req.func + "/" + info.backend, dur);
    flightrec::record(flightrec::EventKind::kOpEnd, req.func.c_str(), dur,
                      flightrec::fnv1a(info.key.c_str()),
                      flightrec::backend_code(info.backend));
  }
}

// ---------------------------------------------------------------------------
// eval_into
// ---------------------------------------------------------------------------

void eval_into(Matrix& target, const MatrixMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               const ExprNode& node) {
  fusion::detail::sync_point();
  // A bare container reference (`C[None] (+)= A`, or the lazy DAG replaying
  // a deferred copy) is an assign, not an apply: the assign dispatch keys
  // are the ones the static table curates for accum/mask merges.
  if (node.kind == ExprNode::Kind::kMatrixRef && !node.user_unary &&
      !node.a_transposed) {
    assign_container(target, mask, accum, replace, *node.ma, nullptr, nullptr);
    return;
  }
  // Output aliasing (`C = C + A`, `C = A @ C`): run the op with its normal
  // dispatch key, but write into a duplicate of the target (so accum/mask
  // merge semantics see the same prior contents), then commit the result
  // back with a single move. The operand reads keep hitting the original.
  if (node_reads(node, target.raw())) {
    Matrix tmp = target.dup();
    eval_into(tmp, mask, accum, replace, node);
    move_contents(target, tmp);
    return;
  }
  MatrixMaskArg safe_mask = mask;
  if (safe_mask.kind != MatrixMaskArg::Kind::kNone &&
      safe_mask.m->raw() == target.raw()) {
    safe_mask.m = std::make_shared<const Matrix>(safe_mask.m->dup());
  }
  obs::Span span("pygb.eval");
  if (span.active()) {
    span.attr("target", "matrix")
        .attr("target_nnz", static_cast<std::uint64_t>(target.nvals()));
  }
  OpRequest req;
  KernelArgs args;
  req.c = target.dtype();
  args.c = target.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(safe_mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  fill_from_node(req, args, node);
  if (span.active()) span.attr("func", req.func);
  flightrec::record(flightrec::EventKind::kOpBegin, req.func.c_str(),
                    static_cast<std::uint64_t>(target.nvals()),
                    (static_cast<std::uint64_t>(target.nrows()) << 32) |
                        static_cast<std::uint64_t>(target.ncols()));
  dispatch(req, args);
}

void eval_into(Vector& target, const VectorMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               const ExprNode& node) {
  fusion::detail::sync_point();
  if (node.kind == ExprNode::Kind::kVectorRef && !node.user_unary) {
    assign_container(target, mask, accum, replace, *node.va, nullptr);
    return;
  }
  if (node_reads(node, target.raw())) {
    Vector tmp = target.dup();
    eval_into(tmp, mask, accum, replace, node);
    move_contents(target, tmp);
    return;
  }
  VectorMaskArg safe_mask = mask;
  if (safe_mask.kind != VectorMaskArg::Kind::kNone &&
      safe_mask.m->raw() == target.raw()) {
    safe_mask.m = std::make_shared<const Vector>(safe_mask.m->dup());
  }
  obs::Span span("pygb.eval");
  if (span.active()) {
    span.attr("target", "vector")
        .attr("target_nnz", static_cast<std::uint64_t>(target.nvals()));
  }
  OpRequest req;
  KernelArgs args;
  req.c = target.dtype();
  args.c = target.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(safe_mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  fill_from_node(req, args, node);
  if (span.active()) span.attr("func", req.func);
  flightrec::record(flightrec::EventKind::kOpBegin, req.func.c_str(),
                    static_cast<std::uint64_t>(target.nvals()),
                    static_cast<std::uint64_t>(target.size()));
  dispatch(req, args);
}

// ---------------------------------------------------------------------------
// assign / extract
// ---------------------------------------------------------------------------

void assign_constant(Matrix& target, const MatrixMaskArg& mask,
                     const std::optional<Accumulator>& accum, bool replace,
                     Scalar value, const gbtl::IndexArray* rows,
                     const gbtl::IndexArray* cols) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kAssignMS;
  req.c = target.dtype();
  args.c = target.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  set_scalar_channels(args, value);
  args.row_indices = rows;
  args.col_indices = cols;
  dispatch(req, args);
}

void assign_container(Matrix& target, const MatrixMaskArg& mask,
                      const std::optional<Accumulator>& accum, bool replace,
                      const Matrix& a, const gbtl::IndexArray* rows,
                      const gbtl::IndexArray* cols) {
  fusion::detail::sync_point();
  // Self-assignment (`C[...] = C`): snapshot the source first.
  const Matrix src = a.raw() == target.raw() ? a.dup() : a;
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kAssignMM;
  req.c = target.dtype();
  req.a = src.dtype();
  args.c = target.raw();
  args.a = src.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  args.row_indices = rows;
  args.col_indices = cols;
  dispatch(req, args);
}

void assign_constant(Vector& target, const VectorMaskArg& mask,
                     const std::optional<Accumulator>& accum, bool replace,
                     Scalar value, const gbtl::IndexArray* idx) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kAssignVS;
  req.c = target.dtype();
  args.c = target.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  set_scalar_channels(args, value);
  args.row_indices = idx;
  dispatch(req, args);
}

void assign_container(Vector& target, const VectorMaskArg& mask,
                      const std::optional<Accumulator>& accum, bool replace,
                      const Vector& u, const gbtl::IndexArray* idx) {
  fusion::detail::sync_point();
  const Vector src = u.raw() == target.raw() ? u.dup() : u;
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kAssignVV;
  req.c = target.dtype();
  req.a = src.dtype();
  args.c = target.raw();
  args.a = src.raw();
  args.replace = replace;
  if (accum) req.accum = accum->op();
  const auto pm = prepare_mask(mask);
  req.mask = pm.kind;
  args.mask = pm.ptr;
  args.row_indices = idx;
  dispatch(req, args);
}

Matrix extract_sub(const Matrix& a, const gbtl::IndexArray* rows,
                   const gbtl::IndexArray* cols, gbtl::IndexType out_rows,
                   gbtl::IndexType out_cols) {
  fusion::detail::sync_point();
  Matrix out(out_rows, out_cols, a.dtype());
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kExtractMM;
  req.c = out.dtype();
  req.a = a.dtype();
  args.c = out.raw();
  args.a = a.raw();
  args.row_indices = rows;
  args.col_indices = cols;
  dispatch(req, args);
  return out;
}

Vector extract_sub(const Vector& u, const gbtl::IndexArray* idx,
                   gbtl::IndexType out_size) {
  fusion::detail::sync_point();
  Vector out(out_size, u.dtype());
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kExtractVV;
  req.c = out.dtype();
  req.a = u.dtype();
  args.c = out.raw();
  args.a = u.raw();
  args.row_indices = idx;
  dispatch(req, args);
  return out;
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

Scalar reduce_scalar(const Matrix& a, const Monoid& monoid) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kReduceMS;
  req.c = a.dtype();
  req.a = a.dtype();
  req.monoid = monoid;
  args.a = a.raw();
  args.scalar_out = &slot;
  dispatch(req, args);
  return scalar_from_slot(a.dtype(), slot);
}

Scalar reduce_scalar(const Vector& u, const Monoid& monoid) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kReduceVS;
  req.c = u.dtype();
  req.a = u.dtype();
  req.monoid = monoid;
  args.a = u.raw();
  args.scalar_out = &slot;
  dispatch(req, args);
  return scalar_from_slot(u.dtype(), slot);
}

// ---------------------------------------------------------------------------
// whole-algorithm dispatch
// ---------------------------------------------------------------------------

gbtl::IndexType dispatch_algo_bfs(const Matrix& graph,
                                  const Vector& frontier, Vector& levels) {
  fusion::detail::sync_point();
  const Vector frontier_bool = frontier.dtype() == DType::kBool
                                   ? frontier
                                   : frontier.astype(DType::kBool);
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kAlgoBfs;
  req.c = levels.dtype();
  req.a = graph.dtype();
  req.b = DType::kBool;
  args.c = levels.raw();
  args.a = graph.raw();
  args.b = frontier_bool.raw();
  args.scalar_out = &slot;
  dispatch(req, args);
  return static_cast<gbtl::IndexType>(slot.i);
}

void dispatch_algo_sssp(const Matrix& graph, Vector& path) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  req.func = jit::func::kAlgoSssp;
  req.c = path.dtype();
  req.a = graph.dtype();
  args.c = path.raw();
  args.a = graph.raw();
  dispatch(req, args);
}

unsigned dispatch_algo_pagerank(const Matrix& graph, Vector& rank,
                                double damping, double threshold,
                                unsigned max_iters) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kAlgoPagerank;
  req.c = rank.dtype();
  req.a = graph.dtype();
  args.c = rank.raw();
  args.a = graph.raw();
  args.extra0 = damping;
  args.extra1 = threshold;
  args.extra2 = static_cast<std::int64_t>(max_iters);
  args.scalar_out = &slot;
  dispatch(req, args);
  return static_cast<unsigned>(slot.i);
}

gbtl::IndexType dispatch_algo_cc(const Matrix& graph, Vector& labels) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kAlgoConnectedComponents;
  req.c = labels.dtype();
  req.a = graph.dtype();
  args.c = labels.raw();
  args.a = graph.raw();
  args.scalar_out = &slot;
  dispatch(req, args);
  return static_cast<gbtl::IndexType>(slot.i);
}

Scalar dispatch_algo_tc(const Matrix& lower) {
  fusion::detail::sync_point();
  OpRequest req;
  KernelArgs args;
  jit::ScalarSlot slot;
  req.func = jit::func::kAlgoTriangleCount;
  req.c = DType::kInt64;
  req.a = lower.dtype();
  args.a = lower.raw();
  args.scalar_out = &slot;
  dispatch(req, args);
  return scalar_from_slot(DType::kInt64, slot);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Assignment proxies (container.hpp). Each reads the replace flag — and for
// +=, the accumulator — from the operator context at assignment time.
// ---------------------------------------------------------------------------

namespace {

detail::ExprNode ref_node(const Matrix& a) {
  detail::ExprNode n{detail::ExprNode::Kind::kMatrixRef};
  n.ma = a;
  return n;
}

detail::ExprNode ref_node(const Vector& u) {
  detail::ExprNode n{detail::ExprNode::Kind::kVectorRef};
  n.va = u;
  return n;
}

/// The accumulator used by `+=`: the innermost context Accumulator, or the
/// context monoid/semiring-add fallback (§III), or Plus when nothing is in
/// scope.
Accumulator iadd_accumulator() {
  if (auto acc = current_accumulator()) return *acc;
  return Accumulator(BinaryOp("Plus"));
}

/// Heap-shared ref node for deferring container copies (`w[None] = v`).
/// Only built when a lazy scope is active — eager assignments keep the
/// stack-allocated ref_node path.
std::shared_ptr<const detail::ExprNode> shared_ref_node(const Matrix& a) {
  return std::make_shared<const detail::ExprNode>(ref_node(a));
}

std::shared_ptr<const detail::ExprNode> shared_ref_node(const Vector& u) {
  return std::make_shared<const detail::ExprNode>(ref_node(u));
}

}  // namespace

MaskedMatrix& MaskedMatrix::operator=(const MatrixExpr& expr) {
  if (fusion::detail::try_defer(target_, mask_, std::nullopt,
                                current_replace(), expr.share_node())) {
    return *this;
  }
  detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                    expr.node());
  return *this;
}

MaskedMatrix& MaskedMatrix::operator=(const Matrix& a) {
  if (fusion::lazy_active() &&
      fusion::detail::try_defer(target_, mask_, std::nullopt,
                                current_replace(), shared_ref_node(a))) {
    return *this;
  }
  detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                    ref_node(a));
  return *this;
}

MaskedMatrix& MaskedMatrix::operator=(Scalar s) {
  detail::assign_constant(target_, mask_, std::nullopt, current_replace(),
                          s, nullptr, nullptr);
  return *this;
}

MaskedMatrix& MaskedMatrix::operator=(double s) {
  return *this = Scalar(s, target_.dtype());
}

MaskedMatrix& MaskedMatrix::operator+=(const MatrixExpr& expr) {
  if (fusion::detail::try_defer(target_, mask_, iadd_accumulator(),
                                current_replace(), expr.share_node())) {
    return *this;
  }
  detail::eval_into(target_, mask_, iadd_accumulator(), current_replace(),
                    expr.node());
  return *this;
}

MaskedMatrix& MaskedMatrix::operator+=(const Matrix& a) {
  if (fusion::lazy_active() &&
      fusion::detail::try_defer(target_, mask_, iadd_accumulator(),
                                current_replace(), shared_ref_node(a))) {
    return *this;
  }
  detail::eval_into(target_, mask_, iadd_accumulator(), current_replace(),
                    ref_node(a));
  return *this;
}

SubMatrixRef MaskedMatrix::operator()(const Slice& rows, const Slice& cols) {
  return SubMatrixRef(target_, mask_, rows, cols);
}

MaskedVector& MaskedVector::operator=(const VectorExpr& expr) {
  if (fusion::detail::try_defer(target_, mask_, std::nullopt,
                                current_replace(), expr.share_node())) {
    return *this;
  }
  detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                    expr.node());
  return *this;
}

MaskedVector& MaskedVector::operator=(const Vector& u) {
  if (fusion::lazy_active() &&
      fusion::detail::try_defer(target_, mask_, std::nullopt,
                                current_replace(), shared_ref_node(u))) {
    return *this;
  }
  detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                    ref_node(u));
  return *this;
}

MaskedVector& MaskedVector::operator=(Scalar s) {
  detail::assign_constant(target_, mask_, std::nullopt, current_replace(),
                          s, nullptr);
  return *this;
}

MaskedVector& MaskedVector::operator=(double s) {
  return *this = Scalar(s, target_.dtype());
}

MaskedVector& MaskedVector::operator+=(const VectorExpr& expr) {
  if (fusion::detail::try_defer(target_, mask_, iadd_accumulator(),
                                current_replace(), expr.share_node())) {
    return *this;
  }
  detail::eval_into(target_, mask_, iadd_accumulator(), current_replace(),
                    expr.node());
  return *this;
}

MaskedVector& MaskedVector::operator+=(const Vector& u) {
  if (fusion::lazy_active() &&
      fusion::detail::try_defer(target_, mask_, iadd_accumulator(),
                                current_replace(), shared_ref_node(u))) {
    return *this;
  }
  detail::eval_into(target_, mask_, iadd_accumulator(), current_replace(),
                    ref_node(u));
  return *this;
}

SubVectorRef MaskedVector::operator[](const Slice& idx) {
  return SubVectorRef(target_, mask_, idx);
}

// ---------------------------------------------------------------------------
// SubMatrixRef / SubVectorRef
// ---------------------------------------------------------------------------

gbtl::IndexArray SubMatrixRef::resolved_rows() const {
  if (row_idx_) return *row_idx_;
  return rows_.resolve(target_.nrows());
}

gbtl::IndexArray SubMatrixRef::resolved_cols() const {
  if (col_idx_) return *col_idx_;
  return cols_.resolve(target_.ncols());
}

namespace {

/// Null when the selection covers the whole dimension (AllIndices fast
/// path); otherwise the resolved array (kept alive by the caller).
const gbtl::IndexArray* maybe_all(
    const std::optional<gbtl::IndexArray>& explicit_idx, const Slice& slice,
    gbtl::IndexType dim, gbtl::IndexArray& storage,
    const gbtl::IndexArray& resolved) {
  if (!explicit_idx && slice.covers_all(dim)) return nullptr;
  storage = resolved;
  return &storage;
}

}  // namespace

SubMatrixRef& SubMatrixRef::operator=(const Matrix& a) {
  gbtl::IndexArray rs, cs;
  const auto* rp = maybe_all(row_idx_, rows_, target_.nrows(), rs,
                             resolved_rows());
  const auto* cp = maybe_all(col_idx_, cols_, target_.ncols(), cs,
                             resolved_cols());
  detail::assign_container(target_, mask_, std::nullopt, current_replace(),
                           a, rp, cp);
  return *this;
}

SubMatrixRef& SubMatrixRef::operator=(const MatrixExpr& expr) {
  // GBTL cannot fuse <operation> + assign-to-region (§IV): the expression
  // is forced into a temporary, then assigned. When the region is the whole
  // matrix the temporary is skipped and the expression evaluates in place.
  if (!row_idx_ && !col_idx_ && rows_.covers_all(target_.nrows()) &&
      cols_.covers_all(target_.ncols())) {
    if (fusion::detail::try_defer(target_, mask_, std::nullopt,
                                  current_replace(), expr.share_node())) {
      return *this;
    }
    detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                      expr.node());
    return *this;
  }
  return *this = expr.eval();
}

SubMatrixRef& SubMatrixRef::operator=(Scalar s) {
  gbtl::IndexArray rs, cs;
  const auto* rp = maybe_all(row_idx_, rows_, target_.nrows(), rs,
                             resolved_rows());
  const auto* cp = maybe_all(col_idx_, cols_, target_.ncols(), cs,
                             resolved_cols());
  detail::assign_constant(target_, mask_, std::nullopt, current_replace(),
                          s, rp, cp);
  return *this;
}

SubMatrixRef& SubMatrixRef::operator=(double s) {
  return *this = Scalar(s, target_.dtype());
}

SubMatrixRef& SubMatrixRef::operator+=(const Matrix& a) {
  gbtl::IndexArray rs, cs;
  const auto* rp = maybe_all(row_idx_, rows_, target_.nrows(), rs,
                             resolved_rows());
  const auto* cp = maybe_all(col_idx_, cols_, target_.ncols(), cs,
                             resolved_cols());
  detail::assign_container(target_, mask_, iadd_accumulator(),
                           current_replace(), a, rp, cp);
  return *this;
}

Matrix SubMatrixRef::extract() const {
  const gbtl::IndexArray rows = resolved_rows();
  const gbtl::IndexArray cols = resolved_cols();
  return detail::extract_sub(target_, &rows, &cols, rows.size(),
                             cols.size());
}

gbtl::IndexArray SubVectorRef::resolved_indices() const {
  if (idx_arr_) return *idx_arr_;
  return idx_.resolve(target_.size());
}

SubVectorRef& SubVectorRef::operator=(const Vector& u) {
  gbtl::IndexArray is;
  const auto* ip =
      maybe_all(idx_arr_, idx_, target_.size(), is, resolved_indices());
  detail::assign_container(target_, mask_, std::nullopt, current_replace(),
                           u, ip);
  return *this;
}

SubVectorRef& SubVectorRef::operator=(const VectorExpr& expr) {
  if (!idx_arr_ && idx_.covers_all(target_.size())) {
    if (fusion::detail::try_defer(target_, mask_, std::nullopt,
                                  current_replace(), expr.share_node())) {
      return *this;
    }
    detail::eval_into(target_, mask_, std::nullopt, current_replace(),
                      expr.node());
    return *this;
  }
  return *this = expr.eval();
}

SubVectorRef& SubVectorRef::operator=(Scalar s) {
  gbtl::IndexArray is;
  const auto* ip =
      maybe_all(idx_arr_, idx_, target_.size(), is, resolved_indices());
  detail::assign_constant(target_, mask_, std::nullopt, current_replace(),
                          s, ip);
  return *this;
}

SubVectorRef& SubVectorRef::operator=(double s) {
  return *this = Scalar(s, target_.dtype());
}

SubVectorRef& SubVectorRef::operator+=(const Vector& u) {
  gbtl::IndexArray is;
  const auto* ip =
      maybe_all(idx_arr_, idx_, target_.size(), is, resolved_indices());
  detail::assign_container(target_, mask_, iadd_accumulator(),
                           current_replace(), u, ip);
  return *this;
}

Vector SubVectorRef::extract() const {
  const gbtl::IndexArray idx = resolved_indices();
  return detail::extract_sub(target_, &idx, idx.size());
}

}  // namespace pygb
