// pygb/fused.hpp — fused operation chains (§V's planned feature,
// implemented): "A planned feature of the lazy evaluation system would
// allow a series of operations to be deferred until a single binary module
// containing all the previously deferred operations is compiled. This
// improvement will allow a chain of steps in an algorithm to be compiled
// into a single module."
//
// A FusedChain records a straight-line sequence of GraphBLAS statements
// over named parameters; run() resolves ONE compiled module for the whole
// chain (through the ordinary registry: memory → disk → g++) and executes
// it with a single dispatch. Masks are not supported inside chains — they
// fuse the unmasked hot loops, e.g. the PageRank iteration body:
//
//   FusedChain it("pagerank_iter");
//   const int rank = it.vector_param("rank", DType::kFP64);
//   const int m    = it.matrix_param("m", DType::kFP64);
//   const int nr   = it.vector_param("new_rank", DType::kFP64);
//   const int tel  = it.scalar_param("teleport");
//   it.vxm(nr, rank, m, ArithmeticSemiring(), Accumulator("Second"));
//   it.apply_bound(nr, nr, BinaryOp("Plus"), tel);
//   ...
//   auto result = it.run({rank_vec, m_mat, nr_vec, 0.15 / n});
#pragma once

#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "pygb/container.hpp"
#include "pygb/jit/module_key.hpp"

namespace pygb {

/// A run-time argument bound to a chain parameter (positional). Plain
/// `double` literals bind only to kFP64 scalar parameters; a typed Scalar
/// must match the parameter dtype exactly.
using ChainArg = std::variant<Matrix, Vector, double, Scalar>;

/// Thrown by FusedChain::run() when an argument fails to bind to its
/// parameter (wrong kind, undefined container, or dtype mismatch). Derives
/// from std::invalid_argument for backward compatibility.
class ChainBindingError : public std::invalid_argument {
 public:
  explicit ChainBindingError(const std::string& what)
      : std::invalid_argument(what) {}
};

class FusedChain {
 public:
  explicit FusedChain(std::string name);

  // --- parameters (return the index used by statements) ---------------------
  int matrix_param(const std::string& name, DType dtype = DType::kFP64);
  int vector_param(const std::string& name, DType dtype = DType::kFP64);
  int scalar_param(const std::string& name, DType dtype = DType::kFP64);

  // --- statements -------------------------------------------------------------
  /// target = target (+)accum  a(vector) ⊕.⊗ b(matrix).
  void vxm(int target, int a, int b, const Semiring& sr,
           std::optional<Accumulator> accum = std::nullopt,
           bool b_transposed = false);
  /// target = target (+)accum  a(matrix) ⊕.⊗ b(vector).
  void mxv(int target, int a, int b, const Semiring& sr,
           std::optional<Accumulator> accum = std::nullopt,
           bool a_transposed = false);
  void mxm(int target, int a, int b, const Semiring& sr,
           bool a_transposed = false, bool b_transposed = false);
  void ewise_add(int target, int a, int b, const BinaryOp& op);
  void ewise_mult(int target, int a, int b, const BinaryOp& op);
  /// target = f(a) with a plain unary op.
  void apply(int target, int a, UnaryOpName f);
  /// target = op(a, scalar_param) — bind-2nd with a runtime scalar.
  void apply_bound(int target, int a, const BinaryOp& op, int scalar_param);
  /// target[:] = scalar_param (dense constant fill).
  void assign_constant(int target, int scalar_param);
  /// Reduce vector `a` with `monoid`; the value lands in RunResult::scalar.
  void reduce(int a, const Monoid& monoid);

  /// Execute the whole chain with one dispatch. Arguments bind
  /// positionally and are validated against parameter kinds and dtypes.
  struct RunResult {
    Scalar scalar;  ///< last reduce statement's value (if any)
  };
  RunResult run(const std::vector<ChainArg>& args) const;

  /// The dispatch key (also the module-cache identity).
  std::string signature() const { return desc_->signature(); }
  std::size_t num_params() const { return desc_->params.size(); }
  std::size_t num_statements() const { return desc_->statements.size(); }

 private:
  jit::ChainStatement& new_statement(const char* func, int target, int a,
                                     int b);
  void check_param(int idx, jit::ChainParam::Kind kind,
                   const char* what) const;

  std::shared_ptr<jit::FusedChainDesc> desc_;
};

namespace detail {

/// Execute a fully-bound chain descriptor with one dispatch: the shared
/// back half of FusedChain::run(), also used by the fusion planner
/// (pygb/plan.hpp) for DAG-fused chains. `ptrs`/`scalars` are indexed by
/// parameter position; kinds/dtypes must already be validated.
jit::ScalarSlot run_chain_raw(
    const std::shared_ptr<const jit::FusedChainDesc>& desc,
    const std::vector<const void*>& ptrs,
    const std::vector<double>& scalars);

}  // namespace detail

}  // namespace pygb
