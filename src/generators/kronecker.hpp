// generators/kronecker.hpp — Kronecker-power graphs (the Graph500 model):
// the k-th Kronecker power of a small initiator matrix, built with the
// substrate's kronecker operation. Deterministic, power-law-ish structure
// that complements the stochastic R-MAT generator.
#pragma once

#include "gbtl/gbtl.hpp"
#include "gbtl/ops/kronecker.hpp"

namespace pygb::gen {

/// k-th Kronecker power of `initiator` (k >= 1 returns the initiator for
/// k == 1). The result has nrows(initiator)^k vertices.
template <typename T>
gbtl::Matrix<T> kronecker_power(const gbtl::Matrix<T>& initiator,
                                unsigned k) {
  if (k == 0) {
    throw std::invalid_argument("kronecker_power: k must be >= 1");
  }
  gbtl::Matrix<T> result = initiator;
  for (unsigned step = 1; step < k; ++step) {
    gbtl::Matrix<T> next(result.nrows() * initiator.nrows(),
                         result.ncols() * initiator.ncols());
    gbtl::kronecker(next, gbtl::NoMask{}, gbtl::NoAccumulate{},
                    gbtl::Times<T>{}, result, initiator);
    result = std::move(next);
  }
  return result;
}

/// The classic Graph500-flavoured 2x2 initiator (unweighted variant):
/// dense except one corner, giving a skewed degree distribution under
/// Kronecker powering.
template <typename T>
gbtl::Matrix<T> graph500_initiator() {
  gbtl::Matrix<T> m(2, 2);
  m.setElement(0, 0, T{1});
  m.setElement(0, 1, T{1});
  m.setElement(1, 0, T{1});
  return m;
}

}  // namespace pygb::gen
