// generators/erdos_renyi.hpp — the paper's evaluation workload: Erdős–Rényi
// random graphs with |E| = O(|V|^1.5) (Figs. 10 and 11).
#pragma once

#include <cstdint>

#include "generators/edge_list.hpp"

namespace pygb::gen {

struct ErdosRenyiParams {
  gbtl::IndexType num_vertices = 0;
  std::size_t num_edges = 0;       ///< distinct directed edges to sample
  bool symmetric = false;          ///< mirror every edge (undirected graph)
  bool self_loops = false;
  double min_weight = 1.0;         ///< weights drawn uniformly in
  double max_weight = 1.0;         ///< [min_weight, max_weight]
  std::uint64_t seed = 42;
};

/// Sample a G(n, M) graph: M distinct directed edges chosen uniformly.
/// Deterministic for a given seed.
EdgeList erdos_renyi(const ErdosRenyiParams& params);

/// The paper's density rule: number of edges for n vertices,
/// |E| = coeff * n^1.5, clamped to the number of possible edges.
std::size_t paper_edge_count(gbtl::IndexType n, double coeff = 1.0);

/// Convenience: the exact Fig. 10/11 workload — ER graph on n vertices with
/// |E| = n^1.5, unit weights unless a weight range is given.
EdgeList paper_graph(gbtl::IndexType n, std::uint64_t seed = 42,
                     bool symmetric = false, double min_weight = 1.0,
                     double max_weight = 1.0);

}  // namespace pygb::gen
