// generators/classic.hpp — deterministic graph families: the NetworkX and
// SciPy constructor analogs from Fig. 3b plus standard test-fixture graphs.
#pragma once

#include "generators/edge_list.hpp"

namespace pygb::gen {

/// Balanced r-ary tree of height h (nx.balanced_tree analog). Edges point
/// parent -> child; set `symmetric` to add child -> parent edges too.
/// Vertex count = (r^(h+1) - 1) / (r - 1), or h + 1 when r == 1.
EdgeList balanced_tree(gbtl::IndexType r, gbtl::IndexType h,
                       bool symmetric = false);

/// Path 0 -> 1 -> ... -> n-1.
EdgeList path_graph(gbtl::IndexType n, bool symmetric = false);

/// Cycle 0 -> 1 -> ... -> n-1 -> 0.
EdgeList cycle_graph(gbtl::IndexType n, bool symmetric = false);

/// Complete directed graph (no self loops).
EdgeList complete_graph(gbtl::IndexType n);

/// Star: hub 0 connected to spokes 1..n-1.
EdgeList star_graph(gbtl::IndexType n, bool symmetric = false);

}  // namespace pygb::gen
