// generators/rmat.hpp — recursive-matrix (R-MAT) power-law graph generator,
// the standard skewed-degree complement to the paper's Erdős–Rényi sweep.
#pragma once

#include <cstdint>

#include "generators/edge_list.hpp"

namespace pygb::gen {

struct RmatParams {
  unsigned scale = 10;        ///< 2^scale vertices
  std::size_t edge_factor = 16;  ///< edges = edge_factor * 2^scale
  double a = 0.57, b = 0.19, c = 0.19;  ///< quadrant probabilities (d = rest)
  bool remove_self_loops = true;
  bool deduplicate = true;
  std::uint64_t seed = 42;
};

EdgeList rmat(const RmatParams& params);

}  // namespace pygb::gen
