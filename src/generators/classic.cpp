#include "generators/classic.hpp"

#include <stdexcept>

namespace pygb::gen {

namespace {

void add_edge(EdgeList& el, gbtl::IndexType s, gbtl::IndexType d,
              bool symmetric) {
  el.edges.push_back({s, d, 1.0});
  if (symmetric) el.edges.push_back({d, s, 1.0});
}

}  // namespace

EdgeList balanced_tree(gbtl::IndexType r, gbtl::IndexType h, bool symmetric) {
  if (r == 0) throw std::invalid_argument("balanced_tree: branching r == 0");
  EdgeList el;
  // Count vertices: sum of r^0 + r^1 + ... + r^h.
  gbtl::IndexType n = 0;
  gbtl::IndexType level = 1;
  for (gbtl::IndexType d = 0; d <= h; ++d) {
    n += level;
    level *= r;
  }
  el.num_vertices = n;
  // Children of vertex v (BFS order) are r*v + 1 ... r*v + r.
  for (gbtl::IndexType v = 0; v < n; ++v) {
    for (gbtl::IndexType k = 1; k <= r; ++k) {
      const gbtl::IndexType child = r * v + k;
      if (child >= n) break;
      add_edge(el, v, child, symmetric);
    }
  }
  return el;
}

EdgeList path_graph(gbtl::IndexType n, bool symmetric) {
  if (n == 0) throw std::invalid_argument("path_graph: empty vertex set");
  EdgeList el;
  el.num_vertices = n;
  for (gbtl::IndexType v = 0; v + 1 < n; ++v) {
    add_edge(el, v, v + 1, symmetric);
  }
  return el;
}

EdgeList cycle_graph(gbtl::IndexType n, bool symmetric) {
  if (n < 2) throw std::invalid_argument("cycle_graph: need >= 2 vertices");
  EdgeList el = path_graph(n, symmetric);
  add_edge(el, n - 1, 0, symmetric);
  return el;
}

EdgeList complete_graph(gbtl::IndexType n) {
  if (n == 0) throw std::invalid_argument("complete_graph: empty vertex set");
  EdgeList el;
  el.num_vertices = n;
  for (gbtl::IndexType i = 0; i < n; ++i) {
    for (gbtl::IndexType j = 0; j < n; ++j) {
      if (i != j) el.edges.push_back({i, j, 1.0});
    }
  }
  return el;
}

EdgeList star_graph(gbtl::IndexType n, bool symmetric) {
  if (n < 2) throw std::invalid_argument("star_graph: need >= 2 vertices");
  EdgeList el;
  el.num_vertices = n;
  for (gbtl::IndexType v = 1; v < n; ++v) {
    add_edge(el, 0, v, symmetric);
  }
  return el;
}

}  // namespace pygb::gen
