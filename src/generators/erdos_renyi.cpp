#include "generators/erdos_renyi.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace pygb::gen {

std::size_t paper_edge_count(gbtl::IndexType n, double coeff) {
  const double want = coeff * std::pow(static_cast<double>(n), 1.5);
  const double max_edges =
      static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<std::size_t>(std::min(want, max_edges));
}

EdgeList erdos_renyi(const ErdosRenyiParams& params) {
  const auto n = params.num_vertices;
  if (n == 0) throw std::invalid_argument("erdos_renyi: empty vertex set");
  const std::size_t possible =
      static_cast<std::size_t>(n) * (params.self_loops ? n : n - 1);
  if (params.num_edges > possible) {
    throw std::invalid_argument("erdos_renyi: more edges than vertex pairs");
  }

  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<gbtl::IndexType> pick(0, n - 1);
  std::uniform_real_distribution<double> weight(params.min_weight,
                                                params.max_weight);

  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(params.num_edges * (params.symmetric ? 2 : 1));

  // Rejection-sample distinct pairs; for symmetric graphs sample the
  // canonical (src < dst) representative so mirrored edges stay distinct.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  while (seen.size() < params.num_edges) {
    gbtl::IndexType s = pick(rng);
    gbtl::IndexType d = pick(rng);
    if (!params.self_loops && s == d) continue;
    if (params.symmetric && s > d) std::swap(s, d);
    const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | d;
    if (!seen.insert(key).second) continue;
    const double w =
        (params.min_weight == params.max_weight) ? params.min_weight
                                                 : weight(rng);
    el.edges.push_back({s, d, w});
    if (params.symmetric && s != d) el.edges.push_back({d, s, w});
  }
  return el;
}

EdgeList paper_graph(gbtl::IndexType n, std::uint64_t seed, bool symmetric,
                     double min_weight, double max_weight) {
  ErdosRenyiParams p;
  p.num_vertices = n;
  // For symmetric graphs the sampled count is canonical pairs; halve so the
  // total stored-edge count stays ~n^1.5.
  p.num_edges = paper_edge_count(n) / (symmetric ? 2 : 1);
  p.symmetric = symmetric;
  p.min_weight = min_weight;
  p.max_weight = max_weight;
  p.seed = seed;
  return erdos_renyi(p);
}

}  // namespace pygb::gen
