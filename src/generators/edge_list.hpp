// generators/edge_list.hpp — generator output staging: a weighted edge list
// plus conversion templates into GBTL adjacency matrices.
#pragma once

#include <vector>

#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"

namespace pygb::gen {

struct Edge {
  gbtl::IndexType src;
  gbtl::IndexType dst;
  double weight;
};

struct EdgeList {
  gbtl::IndexType num_vertices = 0;
  std::vector<Edge> edges;
};

/// Build the adjacency matrix A(src, dst) = weight.
template <typename T>
gbtl::Matrix<T> to_adjacency(const EdgeList& el) {
  gbtl::Matrix<T> m(el.num_vertices, el.num_vertices);
  gbtl::IndexArray is, js;
  std::vector<T> vs;
  is.reserve(el.edges.size());
  js.reserve(el.edges.size());
  vs.reserve(el.edges.size());
  for (const Edge& e : el.edges) {
    is.push_back(e.src);
    js.push_back(e.dst);
    vs.push_back(static_cast<T>(e.weight));
  }
  m.build(is, js, vs);
  return m;
}

}  // namespace pygb::gen
