#include "generators/rmat.hpp"

#include <random>
#include <stdexcept>
#include <unordered_set>

namespace pygb::gen {

EdgeList rmat(const RmatParams& params) {
  if (params.a + params.b + params.c >= 1.0) {
    throw std::invalid_argument("rmat: a + b + c must be < 1");
  }
  const gbtl::IndexType n = gbtl::IndexType{1} << params.scale;
  const std::size_t target = params.edge_factor * static_cast<std::size_t>(n);

  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(target);
  std::unordered_set<std::uint64_t> seen;
  if (params.deduplicate) seen.reserve(target * 2);

  std::size_t produced = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target * 16 + 1024;
  while (produced < target && attempts < max_attempts) {
    ++attempts;
    gbtl::IndexType src = 0, dst = 0;
    for (unsigned bit = 0; bit < params.scale; ++bit) {
      const double p = uni(rng);
      if (p < params.a) {
        // top-left quadrant: no bits set
      } else if (p < params.a + params.b) {
        dst |= gbtl::IndexType{1} << bit;
      } else if (p < params.a + params.b + params.c) {
        src |= gbtl::IndexType{1} << bit;
      } else {
        src |= gbtl::IndexType{1} << bit;
        dst |= gbtl::IndexType{1} << bit;
      }
    }
    if (params.remove_self_loops && src == dst) continue;
    if (params.deduplicate) {
      const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
      if (!seen.insert(key).second) continue;
    }
    el.edges.push_back({src, dst, 1.0});
    ++produced;
  }
  return el;
}

}  // namespace pygb::gen
