// algorithms/bfs.hpp — breadth-first search, the native GBTL form of
// Fig. 2c: level assignment via masked constant assign, frontier expansion
// via mxv over the logical semiring with a complemented-levels mask and
// replace semantics.
#pragma once

#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Compute 1-based BFS levels from the vertices present in `frontier`
/// (usually a single source). `graph` is an adjacency matrix with edges
/// (src, dst); `levels[v]` receives the ply at which v was first reached.
/// Returns the number of plies executed.
template <typename MatT, typename FrontierT, typename LevelsT>
gbtl::IndexType bfs(const MatT& graph, gbtl::Vector<FrontierT> frontier,
                    gbtl::Vector<LevelsT>& levels) {
  using AT = typename MatT::ScalarType;
  gbtl::IndexType depth = 0;
  while (frontier.nvals() > 0) {
    ++depth;
    gbtl::assign(levels, frontier, gbtl::NoAccumulate{},
                 static_cast<LevelsT>(depth), gbtl::AllIndices{});
    gbtl::mxv(frontier, gbtl::complement(levels), gbtl::NoAccumulate{},
              gbtl::LogicalSemiring<AT, FrontierT, FrontierT>{},
              gbtl::transpose(graph), frontier,
              gbtl::OutputControl::kReplace);
  }
  return depth;
}

/// Convenience entry: BFS from a single source vertex.
template <typename MatT, typename LevelsT>
gbtl::IndexType bfs_from(const MatT& graph, gbtl::IndexType source,
                         gbtl::Vector<LevelsT>& levels) {
  gbtl::Vector<bool> frontier(graph.nrows());
  frontier.setElement(source, true);
  levels.clear();
  return bfs(graph, frontier, levels);
}

}  // namespace pygb::algo
