// algorithms/bfs.hpp — breadth-first search, the native GBTL form of
// Fig. 2c: level assignment via masked constant assign, frontier expansion
// via mxv over the logical semiring with a complemented-levels mask and
// replace semantics.
#pragma once

#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Compute 1-based BFS levels from the vertices present in `frontier`
/// (usually a single source). `graph` is an adjacency matrix with edges
/// (src, dst); `levels[v]` receives the ply at which v was first reached.
/// Returns the number of plies executed.
template <typename MatT, typename FrontierT, typename LevelsT>
gbtl::IndexType bfs(const MatT& graph, gbtl::Vector<FrontierT> frontier,
                    gbtl::Vector<LevelsT>& levels) {
  using AT = typename MatT::ScalarType;
  // The ply loop both writes AND reads `levels` (the complemented mask),
  // so the iteration runs on a copy and commits at the end: a governor
  // abort (deadline/cancel/budget) at any checkpoint leaves the caller's
  // vector untouched (docs/ROBUSTNESS.md).
  gbtl::Vector<LevelsT> work = levels;
  gbtl::IndexType depth = 0;
  while (frontier.nvals() > 0) {
    gbtl::detail::pool_checkpoint();  // governor: ply boundary
    ++depth;
    gbtl::assign(work, frontier, gbtl::NoAccumulate{},
                 static_cast<LevelsT>(depth), gbtl::AllIndices{});
    gbtl::mxv(frontier, gbtl::complement(work), gbtl::NoAccumulate{},
              gbtl::LogicalSemiring<AT, FrontierT, FrontierT>{},
              gbtl::transpose(graph), frontier,
              gbtl::OutputControl::kReplace);
  }
  levels = std::move(work);  // commit: the only write to the output
  return depth;
}

/// Convenience entry: BFS from a single source vertex.
template <typename MatT, typename LevelsT>
gbtl::IndexType bfs_from(const MatT& graph, gbtl::IndexType source,
                         gbtl::Vector<LevelsT>& levels) {
  gbtl::Vector<bool> frontier(graph.nrows());
  frontier.setElement(source, true);
  levels.clear();
  return bfs(graph, frontier, levels);
}

}  // namespace pygb::algo
