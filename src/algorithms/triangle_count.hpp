// algorithms/triangle_count.hpp — triangle counting, the native GBTL form
// of Fig. 5b: B<L> = L (+.*) L^T followed by a reduce to scalar, where L is
// the strictly-lower-triangular part of the undirected adjacency matrix.
#pragma once

#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Count triangles given the strictly-lower-triangular matrix L.
template <typename CountT, typename MatT>
CountT triangle_count(const MatT& l) {
  const gbtl::IndexType rows = l.nrows();
  const gbtl::IndexType cols = l.ncols();
  gbtl::Matrix<CountT> b(rows, cols);
  gbtl::mxm(b, l, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<typename MatT::ScalarType,
                                     typename MatT::ScalarType, CountT>{},
            l, gbtl::transpose(l));
  CountT triangles{0};
  gbtl::reduce(triangles, gbtl::NoAccumulate{}, gbtl::PlusMonoid<CountT>{},
               b);
  return triangles;
}

/// Count triangles of an undirected adjacency matrix (splits off L first).
template <typename CountT, typename MatT>
CountT triangle_count_adjacency(const MatT& adjacency) {
  using T = typename MatT::ScalarType;
  gbtl::Matrix<T> lower(adjacency.nrows(), adjacency.ncols());
  gbtl::Matrix<T> upper(adjacency.nrows(), adjacency.ncols());
  gbtl::split(adjacency, lower, upper);
  return triangle_count<CountT>(lower);
}

}  // namespace pygb::algo
