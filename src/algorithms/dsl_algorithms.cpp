#include "algorithms/dsl_algorithms.hpp"

namespace pygb::algo {

gbtl::IndexType dsl_bfs(const Matrix& graph, Vector frontier,
                        Vector& levels) {
  // Fig. 2b:
  //   def bfs(graph, frontier, levels):
  //       depth = 0
  //       while frontier.nvals > 0:
  //           depth += 1
  //           levels[frontier][:] = depth
  //           with gb.LogicalSemiring, gb.Replace:
  //               frontier[~levels] = graph.T @ frontier
  gbtl::IndexType depth = 0;
  while (frontier.nvals() > 0) {
    ++depth;
    levels[frontier][Slice::all()] = static_cast<double>(depth);
    {
      With ctx(LogicalSemiring(), Replace);
      frontier[~levels] = matmul(graph.T(), frontier);
    }
  }
  return depth;
}

void dsl_sssp(const Matrix& graph, Vector& path) {
  // Fig. 4a:
  //   def sssp(graph, path):
  //       with gb.MinPlusSemiring, gb.Accumulator("Min"):
  //           for i in range(graph.shape[0]):
  //               path[None] += graph.T @ path
  With ctx(MinPlusSemiring(), Accumulator("Min"));
  for (gbtl::IndexType i = 0; i < graph.nrows(); ++i) {
    path[None] += matmul(graph.T(), path);
  }
}

std::int64_t dsl_triangle_count(const Matrix& lower) {
  // Fig. 5a:
  //   def triangle_count(L):
  //       B = gb.Matrix(shape=L.shape, dtype=L.dtype)
  //       with gb.ArithmeticSemiring:
  //           B[L] = L @ L.T
  //       return gb.reduce(B)
  Matrix b(lower.nrows(), lower.ncols(), lower.dtype());
  {
    With ctx(ArithmeticSemiring());
    b[lower] = matmul(lower, lower.T());
  }
  return reduce(b).to_int64();
}

Vector dsl_page_rank(const Matrix& graph, double damping_factor,
                     double threshold, unsigned max_iters) {
  // Fig. 7, with the final never-ranked fill following Fig. 8's placement
  // (after convergence as well, so the DSL and native versions agree).
  const auto [rows, cols] = graph.shape();
  const auto n = static_cast<double>(rows);

  Matrix m(rows, cols, DType::kFP64);
  m[None] = graph;
  normalize_rows(m);
  {
    With ctx(UnaryOp("Times", damping_factor));
    m[None] = apply(m);
  }

  Vector page_rank(rows, DType::kFP64);
  page_rank[Slice::all()] = 1.0 / n;
  Vector new_rank(rows, DType::kFP64);
  Vector delta(rows, DType::kFP64);

  // The iteration body is recorded on the lazy DAG: the four value ops
  // (vxm, apply, eWiseAdd, eWiseMult) fuse into one chain kernel per
  // iteration, flushed by the reduce() below. The chain signature is the
  // same every iteration, so the module compiles once and the cache serves
  // it from the second iteration on. The page_rank copy stays an eager
  // assign so the chain shape never varies.
  fusion::LazyScope lazy;
  for (unsigned i = 0; i < max_iters; ++i) {
    {
      With ctx(Accumulator("Second"), Semiring(PlusMonoid(), "Times"));
      new_rank[None] += matmul(page_rank, m);
    }
    {
      With ctx(UnaryOp("Plus", (1.0 - damping_factor) / n));
      new_rank[None] = apply(new_rank);
    }
    {
      With ctx(BinaryOp("Minus"));
      delta[None] = page_rank + new_rank;
    }
    delta[None] = delta * delta;
    const double squared_error = reduce(delta).to_double();

    page_rank[Slice::all()] = new_rank;
    if (squared_error / n < threshold) break;
  }

  new_rank[Slice::all()] = (1.0 - damping_factor) / n;
  {
    With ctx(BinaryOp("Plus"));
    page_rank[~page_rank] = page_rank + new_rank;
  }
  return page_rank;
}

gbtl::IndexType dsl_connected_components(const Matrix& graph,
                                         Vector& labels) {
  const gbtl::IndexType n = graph.nrows();
  labels.clear();
  for (gbtl::IndexType v = 0; v < n; ++v) {
    labels.set(v, Scalar(static_cast<double>(v), labels.dtype()));
  }
  gbtl::IndexType rounds = 0;
  for (gbtl::IndexType k = 0; k < n; ++k) {
    Vector before = labels.dup();
    {
      With ctx(MinSelect2ndSemiring(), Accumulator("Min"));
      labels[None] += matmul(graph.T(), labels);
    }
    ++rounds;
    if (labels.equals(before)) break;
  }
  return rounds;
}

gbtl::IndexType whole_bfs(const Matrix& graph, const Vector& frontier,
                          Vector& levels) {
  return detail::dispatch_algo_bfs(graph, frontier, levels);
}

void whole_sssp(const Matrix& graph, Vector& path) {
  detail::dispatch_algo_sssp(graph, path);
}

std::int64_t whole_triangle_count(const Matrix& lower) {
  return detail::dispatch_algo_tc(lower).to_int64();
}

unsigned whole_page_rank(const Matrix& graph, Vector& rank,
                         double damping_factor, double threshold,
                         unsigned max_iters) {
  if (!rank.defined() || rank.size() != graph.nrows()) {
    rank = Vector(graph.nrows(), DType::kFP64);
  }
  return detail::dispatch_algo_pagerank(graph, rank, damping_factor,
                                        threshold, max_iters);
}

gbtl::IndexType whole_connected_components(const Matrix& graph,
                                           Vector& labels) {
  if (!labels.defined() || labels.size() != graph.nrows()) {
    labels = Vector(graph.nrows(), DType::kInt64);
  }
  return detail::dispatch_algo_cc(graph, labels);
}

}  // namespace pygb::algo
