// algorithms/betweenness.hpp — single-source Brandes betweenness
// centrality expressed in GraphBLAS primitives (the canonical "hard"
// GraphBLAS algorithm): a masked-frontier forward sweep counting shortest
// paths per BFS level, then a backward dependency accumulation using
// eWiseMult(Div)/mxv/eWiseAdd. Unweighted graphs.
#pragma once

#include <vector>

#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Accumulate the dependency scores of shortest paths from `source` into
/// `bc` (which must be size n; existing values are added to, so calling
/// once per source computes full betweenness). Returns the number of BFS
/// levels explored.
template <typename MatT>
gbtl::IndexType bc_from_source(const MatT& graph, gbtl::IndexType source,
                               gbtl::Vector<double>& bc) {
  using AT = typename MatT::ScalarType;
  const gbtl::IndexType n = graph.nrows();
  if (bc.size() != n) {
    throw gbtl::DimensionException("bc_from_source: bc size != n");
  }

  // --- forward: per-level path counts -------------------------------------
  // sigma[d](v) = number of shortest s->v paths of length d.
  std::vector<gbtl::Vector<double>> sigma;
  gbtl::Vector<double> frontier(n);
  frontier.setElement(source, 1.0);
  gbtl::Vector<double> paths = frontier;  // all discovered path counts
  sigma.push_back(frontier);

  while (true) {
    // frontier<¬paths, replace> = A^T +.* frontier: path counts reach the
    // next level; vertices already discovered are masked out.
    gbtl::mxv(frontier, gbtl::complement(paths), gbtl::NoAccumulate{},
              gbtl::ArithmeticSemiring<AT, double, double>{},
              gbtl::transpose(graph), frontier,
              gbtl::OutputControl::kReplace);
    if (frontier.nvals() == 0) break;
    sigma.push_back(frontier);
    gbtl::eWiseAdd(paths, gbtl::NoMask{}, gbtl::NoAccumulate{},
                   gbtl::Plus<double>{}, paths, frontier);
  }

  // --- backward: dependency accumulation ----------------------------------
  // delta kept dense so eWiseMult intersections follow sigma's structure.
  gbtl::Vector<double> delta(n);
  gbtl::assign(delta, gbtl::NoMask{}, gbtl::NoAccumulate{}, 0.0,
               gbtl::AllIndices{});

  for (std::size_t d = sigma.size(); d-- > 1;) {
    // t1(v) = (1 + delta(v)) / sigma[d](v) on sigma[d]'s structure.
    gbtl::Vector<double> one_plus_delta(n);
    gbtl::apply(one_plus_delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                gbtl::BinaryOpBind2nd<double, gbtl::Plus<double>>(1.0),
                delta);
    gbtl::Vector<double> t1(n);
    gbtl::eWiseMult(t1, gbtl::NoMask{}, gbtl::NoAccumulate{},
                    gbtl::Div<double>{}, one_plus_delta, sigma[d]);
    // t2 = A +.* t1: pull the level-d terms back to level d-1 vertices.
    gbtl::Vector<double> t2(n);
    gbtl::mxv(t2, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::ArithmeticSemiring<AT, double, double>{}, graph, t1);
    // delta(v) += sigma[d-1](v) * t2(v).
    gbtl::Vector<double> upd(n);
    gbtl::eWiseMult(upd, gbtl::NoMask{}, gbtl::NoAccumulate{},
                    gbtl::Times<double>{}, sigma[d - 1], t2);
    gbtl::eWiseAdd(delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                   gbtl::Plus<double>{}, delta, upd);
  }

  // bc += delta, excluding the source's own slot.
  delta.removeElement(source);
  delta.setElement(source, 0.0);
  gbtl::eWiseAdd(bc, gbtl::NoMask{}, gbtl::NoAccumulate{},
                 gbtl::Plus<double>{}, bc, delta);
  return static_cast<gbtl::IndexType>(sigma.size());
}

/// Full (directed) betweenness: one Brandes sweep per vertex.
template <typename MatT>
gbtl::Vector<double> betweenness_centrality(const MatT& graph) {
  const gbtl::IndexType n = graph.nrows();
  gbtl::Vector<double> bc(n);
  gbtl::assign(bc, gbtl::NoMask{}, gbtl::NoAccumulate{}, 0.0,
               gbtl::AllIndices{});
  for (gbtl::IndexType s = 0; s < n; ++s) {
    bc_from_source(graph, s, bc);
  }
  return bc;
}

}  // namespace pygb::algo
