// algorithms/connected_components.hpp — connected components via label
// propagation in the (Min, Select2nd) semiring: every vertex starts with
// its own id as label and repeatedly adopts the minimum label among its
// neighbours until a fixed point. A classic GraphBLAS building-block
// algorithm composed from the same primitives as the paper's four.
#pragma once

#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Compute component labels for an undirected graph (the adjacency matrix
/// must be symmetric for the fixed point to identify weakly-connected
/// components). labels[v] receives the smallest vertex id in v's
/// component. Returns the number of propagation rounds executed.
template <typename MatT, typename LabelT>
gbtl::IndexType connected_components(const MatT& graph,
                                     gbtl::Vector<LabelT>& labels) {
  using AT = typename MatT::ScalarType;
  const gbtl::IndexType n = graph.nrows();
  if (labels.size() != n) {
    throw gbtl::DimensionException("connected_components: label size");
  }

  // Propagate over a working vector and commit at the end so a governor
  // abort (deadline/cancel/budget) at a round boundary leaves the
  // caller's vector untouched (docs/ROBUSTNESS.md).
  // work = [0, 1, ..., n-1]
  gbtl::Vector<LabelT> work(n);
  for (gbtl::IndexType v = 0; v < n; ++v) {
    work.setElement(v, static_cast<LabelT>(v));
  }

  gbtl::IndexType rounds = 0;
  for (gbtl::IndexType k = 0; k < n; ++k) {
    gbtl::detail::pool_checkpoint();  // governor: round boundary
    gbtl::Vector<LabelT> before = work;
    // work = work min (A^T min.2nd work): each vertex adopts the
    // smallest neighbour label. Select2nd picks the label (not the edge
    // weight); Min both reduces over neighbours and accumulates.
    gbtl::mxv(work, gbtl::NoMask{}, gbtl::Min<LabelT>{},
              gbtl::MinSelect2ndSemiring<AT, LabelT, LabelT>{},
              gbtl::transpose(graph), work);
    ++rounds;
    if (work == before) break;
  }
  labels = std::move(work);  // commit: the only write to the output
  return rounds;
}

/// Count distinct components from a label vector.
template <typename LabelT>
gbtl::IndexType count_components(const gbtl::Vector<LabelT>& labels) {
  // A label identifies a component iff it equals its own vertex id.
  gbtl::IndexType count = 0;
  for (gbtl::IndexType v = 0; v < labels.size(); ++v) {
    if (labels.hasElement(v) &&
        labels.extractElement(v) == static_cast<LabelT>(v)) {
      ++count;
    }
  }
  return count;
}

}  // namespace pygb::algo
