// algorithms/pagerank.hpp — PageRank, the native GBTL form of Fig. 8:
// row-normalized, damping-scaled transition matrix; per-iteration vxm with
// a Second accumulator; teleport term via a bound Plus apply; squared-error
// convergence via eWiseAdd(Minus) + eWiseMult(Times) + reduce; and a final
// fill of never-ranked vertices through a complemented-output mask.
#pragma once

#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Run PageRank on `graph` into `page_rank`. Returns iterations executed.
template <typename MatT, typename RealT = double>
unsigned page_rank(const MatT& graph, gbtl::Vector<RealT>& page_rank,
                   RealT damping_factor = RealT{0.85},
                   RealT threshold = RealT{1e-5},
                   unsigned max_iters = 100000) {
  static_assert(std::is_floating_point_v<RealT>);
  using T = typename MatT::ScalarType;

  const gbtl::IndexType rows = graph.nrows();
  // Checked up front (the vxm below would reject it anyway) because the
  // iteration runs on a local staging vector: `page_rank` is only written
  // by the commit at the end, so an abort mid-run — a governor deadline,
  // cancellation, or budget rejection at any checkpoint — leaves the
  // caller's vector exactly as it was (docs/ROBUSTNESS.md).
  if (page_rank.size() != rows) {
    throw gbtl::DimensionException("page_rank: size(rank) != nrows(graph)");
  }
  gbtl::Matrix<RealT> m(rows, graph.ncols());

  gbtl::apply(m, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::Identity<T, RealT>{}, graph);
  gbtl::normalize_rows(m);
  gbtl::apply(m, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::BinaryOpBind2nd<RealT, gbtl::Times<RealT>>(damping_factor),
              m);

  const RealT teleport =
      (RealT{1} - damping_factor) / static_cast<RealT>(rows);
  gbtl::BinaryOpBind2nd<RealT, gbtl::Plus<RealT>> add_scaled_teleport(
      teleport);

  gbtl::Vector<RealT> rank(rows);
  gbtl::assign(rank, gbtl::NoMask{}, gbtl::NoAccumulate{},
               RealT{1} / static_cast<RealT>(rows), gbtl::AllIndices{});

  gbtl::Vector<RealT> new_rank(rows);
  gbtl::Vector<RealT> delta(rows);

  unsigned iters = 0;
  for (unsigned i = 0; i < max_iters; ++i) {
    gbtl::detail::pool_checkpoint();  // governor: iteration boundary
    ++iters;
    gbtl::vxm(new_rank, gbtl::NoMask{}, gbtl::Second<RealT>{},
              gbtl::ArithmeticSemiring<RealT>{}, rank, m);
    gbtl::apply(new_rank, gbtl::NoMask{}, gbtl::NoAccumulate{},
                add_scaled_teleport, new_rank);

    gbtl::eWiseAdd(delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                   gbtl::Minus<RealT>{}, rank, new_rank);
    gbtl::eWiseMult(delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                    gbtl::Times<RealT>{}, delta, delta);

    RealT squared_error{0};
    gbtl::reduce(squared_error, gbtl::NoAccumulate{},
                 gbtl::PlusMonoid<RealT>{}, delta);

    rank = new_rank;
    if (squared_error / static_cast<RealT>(rows) < threshold) break;
  }

  // Vertices never reached by rank flow get the bare teleport probability.
  gbtl::assign(new_rank, gbtl::NoMask{}, gbtl::NoAccumulate{}, teleport,
               gbtl::AllIndices{});
  gbtl::eWiseAdd(rank, gbtl::complement(rank),
                 gbtl::NoAccumulate{}, gbtl::Plus<RealT>{}, rank,
                 new_rank);
  page_rank = std::move(rank);  // commit: the only write to the output
  return iters;
}

}  // namespace pygb::algo
