// algorithms/pagerank.hpp — PageRank, the native GBTL form of Fig. 8:
// row-normalized, damping-scaled transition matrix; per-iteration vxm with
// a Second accumulator; teleport term via a bound Plus apply; squared-error
// convergence via eWiseAdd(Minus) + eWiseMult(Times) + reduce; and a final
// fill of never-ranked vertices through a complemented-output mask.
#pragma once

#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Run PageRank on `graph` into `page_rank`. Returns iterations executed.
template <typename MatT, typename RealT = double>
unsigned page_rank(const MatT& graph, gbtl::Vector<RealT>& page_rank,
                   RealT damping_factor = RealT{0.85},
                   RealT threshold = RealT{1e-5},
                   unsigned max_iters = 100000) {
  static_assert(std::is_floating_point_v<RealT>);
  using T = typename MatT::ScalarType;

  const gbtl::IndexType rows = graph.nrows();
  gbtl::Matrix<RealT> m(rows, graph.ncols());

  gbtl::apply(m, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::Identity<T, RealT>{}, graph);
  gbtl::normalize_rows(m);
  gbtl::apply(m, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::BinaryOpBind2nd<RealT, gbtl::Times<RealT>>(damping_factor),
              m);

  const RealT teleport =
      (RealT{1} - damping_factor) / static_cast<RealT>(rows);
  gbtl::BinaryOpBind2nd<RealT, gbtl::Plus<RealT>> add_scaled_teleport(
      teleport);

  gbtl::assign(page_rank, gbtl::NoMask{}, gbtl::NoAccumulate{},
               RealT{1} / static_cast<RealT>(rows), gbtl::AllIndices{});

  gbtl::Vector<RealT> new_rank(rows);
  gbtl::Vector<RealT> delta(rows);

  unsigned iters = 0;
  for (unsigned i = 0; i < max_iters; ++i) {
    ++iters;
    gbtl::vxm(new_rank, gbtl::NoMask{}, gbtl::Second<RealT>{},
              gbtl::ArithmeticSemiring<RealT>{}, page_rank, m);
    gbtl::apply(new_rank, gbtl::NoMask{}, gbtl::NoAccumulate{},
                add_scaled_teleport, new_rank);

    gbtl::eWiseAdd(delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                   gbtl::Minus<RealT>{}, page_rank, new_rank);
    gbtl::eWiseMult(delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                    gbtl::Times<RealT>{}, delta, delta);

    RealT squared_error{0};
    gbtl::reduce(squared_error, gbtl::NoAccumulate{},
                 gbtl::PlusMonoid<RealT>{}, delta);

    page_rank = new_rank;
    if (squared_error / static_cast<RealT>(rows) < threshold) break;
  }

  // Vertices never reached by rank flow get the bare teleport probability.
  gbtl::assign(new_rank, gbtl::NoMask{}, gbtl::NoAccumulate{}, teleport,
               gbtl::AllIndices{});
  gbtl::eWiseAdd(page_rank, gbtl::complement(page_rank),
                 gbtl::NoAccumulate{}, gbtl::Plus<RealT>{}, page_rank,
                 new_rank);
  return iters;
}

}  // namespace pygb::algo
