// algorithms/dsl_algorithms.hpp — the paper's four algorithms written in
// the DSL, line-for-line mirrors of the PyGB listings (Figs. 2b, 4a, 5a,
// 7), plus whole-algorithm-dispatch wrappers (the middle series of
// Fig. 10: one registry lookup runs the entire compiled C++ algorithm).
#pragma once

#include "pygb/pygb.hpp"

namespace pygb::algo {

/// Fig. 2b — BFS with the outer loop in the host language, one dispatched
/// operation per DSL statement. Returns the number of plies.
gbtl::IndexType dsl_bfs(const Matrix& graph, Vector frontier,
                        Vector& levels);

/// Fig. 4a — SSSP: |V| relaxations of path[None] += graph.T @ path under
/// MinPlusSemiring + Accumulator("Min").
void dsl_sssp(const Matrix& graph, Vector& path);

/// Fig. 5a — triangle counting: B[L] = L @ L.T; reduce(B).
std::int64_t dsl_triangle_count(const Matrix& lower);

/// Fig. 7 — PageRank; returns the ranks vector (page_rank is rebound
/// inside, matching the Python listing's return).
Vector dsl_page_rank(const Matrix& graph, double damping_factor = 0.85,
                     double threshold = 1e-5, unsigned max_iters = 100000);

/// Connected components by min-label propagation (the (Min, Select2nd)
/// semiring) — a fifth algorithm composed from the paper's primitives.
/// Returns the number of propagation rounds.
gbtl::IndexType dsl_connected_components(const Matrix& graph,
                                         Vector& labels);

/// Whole-algorithm dispatch variants: the DSL hands the complete loop to a
/// single compiled module (Fig. 10's "Python calls a complete C++
/// algorithm" series).
gbtl::IndexType whole_bfs(const Matrix& graph, const Vector& frontier,
                          Vector& levels);
void whole_sssp(const Matrix& graph, Vector& path);
std::int64_t whole_triangle_count(const Matrix& lower);
unsigned whole_page_rank(const Matrix& graph, Vector& rank,
                         double damping_factor = 0.85,
                         double threshold = 1e-5,
                         unsigned max_iters = 100000);
gbtl::IndexType whole_connected_components(const Matrix& graph,
                                           Vector& labels);

}  // namespace pygb::algo
