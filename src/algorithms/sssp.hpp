// algorithms/sssp.hpp — single-source shortest path, the native GBTL form
// of Fig. 4b: |V| rounds of mxv over the min-plus semiring with a Min
// accumulator (Bellman–Ford expressed in linear algebra).
#pragma once

#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"

namespace pygb::algo {

/// Relax `path` against the transposed graph |V| times:
///   path = path min (graph^T min.+ path)
/// `path` carries the current best distances (absent = unreached); seed it
/// with 0 at the source before calling.
template <typename MatT, typename PathT>
void sssp(const MatT& graph, gbtl::Vector<PathT>& path) {
  using AT = typename MatT::ScalarType;
  // Relax a working copy and commit at the end so a governor abort
  // (deadline/cancel/budget) at a round boundary leaves the caller's
  // vector untouched (docs/ROBUSTNESS.md).
  gbtl::Vector<PathT> work = path;
  for (gbtl::IndexType k = 0; k < graph.nrows(); ++k) {
    gbtl::detail::pool_checkpoint();  // governor: round boundary
    gbtl::mxv(work, gbtl::NoMask{}, gbtl::Min<PathT>{},
              gbtl::MinPlusSemiring<AT, PathT, PathT>{},
              gbtl::transpose(graph), work);
  }
  path = std::move(work);  // commit: the only write to the output
}

/// Variant that stops as soon as a round makes no improvement — the
/// optimization PyGB's Python-side outer loop can also express. Returns the
/// number of relaxation rounds executed.
template <typename MatT, typename PathT>
gbtl::IndexType sssp_early_exit(const MatT& graph,
                                gbtl::Vector<PathT>& path) {
  using AT = typename MatT::ScalarType;
  gbtl::Vector<PathT> work = path;
  gbtl::IndexType rounds = 0;
  for (gbtl::IndexType k = 0; k < graph.nrows(); ++k) {
    gbtl::detail::pool_checkpoint();  // governor: round boundary
    gbtl::Vector<PathT> before = work;
    gbtl::mxv(work, gbtl::NoMask{}, gbtl::Min<PathT>{},
              gbtl::MinPlusSemiring<AT, PathT, PathT>{},
              gbtl::transpose(graph), work);
    ++rounds;
    if (work == before) break;
  }
  path = std::move(work);  // commit: the only write to the output
  return rounds;
}

/// Convenience entry: distances from a single source (0 for the source).
template <typename MatT, typename PathT>
void sssp_from(const MatT& graph, gbtl::IndexType source,
               gbtl::Vector<PathT>& path) {
  path.clear();
  path.setElement(source, PathT{0});
  sssp(graph, path);
}

}  // namespace pygb::algo
