// tools/pygb_compiled.cpp — the persistent compile-service worker.
//
// Spawned and supervised by pygb::jit::CompileService (spawn_supervised:
// own process group, PR_SET_PDEATHSIG, no core dumps). Speaks the
// length-prefixed frame protocol of pygb/jit/compile_service.hpp on the
// socketpair the supervisor installed as fd 0/1; stderr passes through to
// the client for human eyes.
//
// What a resident worker buys over per-compile fork/exec: at startup it
// precompiles pygb/jit/glue.hpp — the header every generated module
// includes first, and by far the dominant cost of a module compile — into
// a private .gch, then serves each compile against it (-I<pchdir> is
// searched before the real include dir, and gcc silently ignores the .gch
// if flags drift, so correctness never depends on it). The PCH directory
// is torn down on SIGTERM/EOF with plain unlink/rmdir (AS-safe).
//
// Faultinj site "compiled" is enacted HERE (PYGB_FAULTS is inherited from
// the client): at startup — crash exits before the handshake, stale_proto
// handshakes a wrong version, corrupt garbles the handshake, hang parks —
// and again per request. The client's detection and restart machinery is
// therefore exercised against a real misbehaving process, not a mock.
//
// Protocol (all frames [u32 LE len][payload], '\x1f'-separated fields):
//   handshake (worker→client): PYGB-COMPILED, version, pid, pch(0|1)
//   request:  REQ, id, timeout_ms, mem_limit_mb, retries, cxx, flags,
//             include_dir, source, output
//   response: RSP, id, status, exit_code, transient(0|1), attempts,
//             wall_ns, stderr-tail (last field, verbatim to frame end)
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pygb/faultinj.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/subprocess.hpp"

namespace {

using namespace pygb::jit;

// PCH teardown paths, precomputed into static storage so the SIGTERM
// handler can clean up with nothing but unlink(2)/rmdir(2).
char g_pch_file[4096];
char g_pch_dir0[4096];  // <root>/pygb/jit
char g_pch_dir1[4096];  // <root>/pygb
char g_pch_root[4096];  // <root>

void remove_pch() noexcept {
  if (g_pch_file[0] != '\0') ::unlink(g_pch_file);
  if (g_pch_dir0[0] != '\0') ::rmdir(g_pch_dir0);
  if (g_pch_dir1[0] != '\0') ::rmdir(g_pch_dir1);
  if (g_pch_root[0] != '\0') ::rmdir(g_pch_root);
}

extern "C" void on_term(int) {
  remove_pch();
  ::_exit(0);
}

/// Build the glue.hpp precompiled header in a worker-private tmp dir.
/// Returns the -I root on success, "" on any failure (the worker then
/// serves plain compiles — slower, never wrong).
std::string build_pch() {
  const char* gate = std::getenv("PYGB_COMPILED_PCH");
  if (gate != nullptr && (std::strcmp(gate, "off") == 0 ||
                          std::strcmp(gate, "0") == 0)) {
    return "";
  }
  const std::string include = source_include_dir();
  if (include.empty()) return "";
  const char* tmp = std::getenv("TMPDIR");
  std::string root = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  root += "/pygb_pch_" + std::to_string(::getpid());
  const std::string jitdir = root + "/pygb/jit";
  const std::string gch = jitdir + "/glue.hpp.gch";
  if (::mkdir(root.c_str(), 0700) != 0 ||
      ::mkdir((root + "/pygb").c_str(), 0700) != 0 ||
      ::mkdir(jitdir.c_str(), 0700) != 0) {
    return "";
  }
  std::snprintf(g_pch_root, sizeof g_pch_root, "%s", root.c_str());
  std::snprintf(g_pch_dir1, sizeof g_pch_dir1, "%s/pygb", root.c_str());
  std::snprintf(g_pch_dir0, sizeof g_pch_dir0, "%s", jitdir.c_str());
  std::snprintf(g_pch_file, sizeof g_pch_file, "%s", gch.c_str());

  RunOptions opt;
  opt.argv = split_command(compiler_command());
  for (const auto& flag : split_command(compile_flags())) {
    // -shared is a link-stage flag; a PCH is compile-only. Everything that
    // affects the preprocessed state (-std, -O, -D, -fPIC) must match the
    // module compiles exactly or gcc will (correctly) refuse the .gch.
    if (flag == "-shared") continue;
    opt.argv.push_back(flag);
  }
  opt.argv.push_back("-x");
  opt.argv.push_back("c++-header");
  opt.argv.push_back("-I" + include);
  opt.argv.push_back(include + "/pygb/jit/glue.hpp");
  opt.argv.push_back("-o");
  opt.argv.push_back(gch);
  opt.timeout_ms = jit_timeout_ms();
  opt.mem_limit_mb = jit_mem_limit_mb();
  opt.kill_on_parent_death = true;
  const RunOutcome ro = run_subprocess(opt);
  if (!ro.ok()) {
    remove_pch();
    g_pch_file[0] = g_pch_dir0[0] = g_pch_dir1[0] = g_pch_root[0] = '\0';
    return "";
  }
  return root;
}

/// Enact a faultinj decision at a protocol boundary. Returns true when the
/// caller should proceed normally (possibly delayed).
bool enact(pygb::faultinj::Action a, bool handshake_pending) {
  using pygb::faultinj::Action;
  switch (a) {
    case Action::kNone:
      return true;
    case Action::kSlow:
      ::usleep(2000 * 1000);
      return true;
    case Action::kCrash:
      ::_exit(86);  // abrupt: no reply, no PCH cleanup — the client's
                    // death detection and the pdeathsig on any g++ child
                    // are what keep this survivable
    case Action::kHang:
      for (;;) ::pause();  // parked until the supervisor kills us
    case Action::kCorrupt: {
      // A frame header promising more bytes than ever arrive: the client
      // must classify this as corruption, kill, and restart.
      const unsigned char garbage[] = {0xff, 0xff, 0xff, 0x7e, 'j', 'u',
                                       'n', 'k'};
      ssize_t ignored =
          ::write(1, garbage, sizeof garbage);
      (void)ignored;
      for (;;) ::pause();
    }
    case Action::kStaleProto: {
      if (handshake_pending) return true;  // handled by the handshake path
      compiled::write_frame(
          1, std::string(compiled::kMagic) + compiled::kSep + "99");
      for (;;) ::pause();
    }
    case Action::kFail:
      return false;  // caller reports an injected compiler failure
  }
  return true;
}

}  // namespace

int main() {
  // Frames only on fd 1 — anything else printf'd there is protocol
  // corruption, so stdout stays untouched and diagnostics go to stderr.
  struct sigaction sa = {};
  sa.sa_handler = on_term;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Startup fault visit: models "worker broken at spawn".
  const auto boot = pygb::faultinj::check(pygb::faultinj::site::kCompiled);
  bool stale_proto = boot.action == pygb::faultinj::Action::kStaleProto;
  if (!enact(boot.action, /*handshake_pending=*/true)) ::_exit(1);

  const std::string pch_root = build_pch();

  std::string hello = compiled::kMagic;
  hello += compiled::kSep;
  hello += std::to_string(stale_proto ? 99 : compiled::kProtocolVersion);
  hello += compiled::kSep;
  hello += std::to_string(::getpid());
  hello += compiled::kSep;
  hello += pch_root.empty() ? "0" : "1";
  if (!compiled::write_frame(1, hello)) {
    remove_pch();
    return 1;
  }

  std::string payload;
  for (;;) {
    const auto rr = compiled::read_frame(0, &payload, /*deadline_ms=*/-1);
    if (rr == compiled::ReadResult::kEof) break;  // client gone: clean exit
    if (rr != compiled::ReadResult::kOk) {
      remove_pch();
      return 2;
    }
    std::string f[10];
    compiled::split_fields(payload, compiled::kSep, 10, f);
    if (f[0] != "REQ") {
      remove_pch();
      return 2;
    }
    const std::string& id = f[1];
    const int timeout_ms = std::atoi(f[2].c_str());
    const std::uint64_t mem_mb = std::strtoull(f[3].c_str(), nullptr, 10);
    const int retries = std::atoi(f[4].c_str());
    const std::string& cxx = f[5];
    const std::string& flags = f[6];
    const std::string& include = f[7];
    const std::string& source = f[8];
    const std::string& output = f[9];

    const auto fault =
        pygb::faultinj::check(pygb::faultinj::site::kCompiled);
    std::string rsp = "RSP";
    rsp += compiled::kSep;
    rsp += id;
    rsp += compiled::kSep;
    if (!enact(fault.action, /*handshake_pending=*/false)) {
      rsp += "exit-nonzero";
      rsp += compiled::kSep;
      rsp += "1";  // exit_code
      rsp += compiled::kSep;
      rsp += "0";  // transient
      rsp += compiled::kSep;
      rsp += "1";  // attempts
      rsp += compiled::kSep;
      rsp += "0";  // wall_ns
      rsp += compiled::kSep;
      rsp += "faultinj: injected compile-service failure (compiled:fail)";
      if (!compiled::write_frame(1, rsp)) break;
      continue;
    }

    RunOptions opt;
    opt.argv = split_command(cxx);
    for (const auto& flag : split_command(flags)) opt.argv.push_back(flag);
    if (!pch_root.empty()) opt.argv.push_back("-I" + pch_root);
    opt.argv.push_back("-I" + include);
    opt.argv.push_back(source);
    opt.argv.push_back("-o");
    opt.argv.push_back(output);
    opt.timeout_ms = timeout_ms;
    opt.mem_limit_mb = mem_mb;
    opt.max_attempts = 1 + (retries < 0 ? 0 : retries);
    opt.fault_site = pygb::faultinj::site::kCompile;
    // If the supervisor SIGKILLs THIS process mid-compile, the g++ child
    // dies with it instead of racing an unsupervised .so.tmp into place.
    opt.kill_on_parent_death = true;
    const RunOutcome ro = run_subprocess(opt);

    rsp += to_string(ro.status);
    rsp += compiled::kSep;
    rsp += std::to_string(ro.exit_code);
    rsp += compiled::kSep;
    rsp += ro.transient ? "1" : "0";
    rsp += compiled::kSep;
    rsp += std::to_string(ro.attempts);
    rsp += compiled::kSep;
    rsp += std::to_string(
        static_cast<std::uint64_t>(ro.seconds * 1e9));
    rsp += compiled::kSep;
    rsp += ro.captured;  // last field: verbatim to frame end
    if (!compiled::write_frame(1, rsp)) break;
  }
  remove_pch();
  return 0;
}
