// pygb_cli — command-line driver: load a graph from disk (Matrix Market or
// triplet text) and run any of the library's algorithms through the DSL.
//
//   pygb_cli <algorithm> <graph-file> [options]
//   pygb_cli --cache-info | --cache-clear | --health
//
//   algorithms:  bfs | sssp | pagerank | tc | cc | bc | info
//   options:     --source N        start vertex for bfs/sssp   (default 0)
//                --damping X       PageRank damping            (default 0.85)
//                --threshold X     PageRank convergence        (default 1e-5)
//                --tier dsl|whole|native   implementation tier (default dsl)
//                --top K           print the K best-ranked rows (default 10)
//                --trace FILE      write a Chrome trace_event JSON of the
//                                  dispatch pipeline (open in Perfetto)
//                --stats           print the end-of-run metrics summary
//                                  (kernel-time histograms, cache hit
//                                  ratio, compile seconds)
//                --stats-json      machine-readable twin of --stats: the
//                                  schema-versioned pygb.metrics JSON on
//                                  stdout (same key names as the exporter;
//                                  the human report moves to stderr)
//                --metrics-json F  write the pygb.metrics JSON snapshot to
//                                  F after the run ("-" = stdout)
//                --metrics-prom F  write the Prometheus text exposition to
//                                  F after the run ("-" = stdout)
//                --crash-dir DIR   install the crash handler; a fatal
//                                  signal writes an attribution report
//                                  into DIR (same as PYGB_CRASH_DIR)
//                --faults SPEC     arm deterministic fault injection for
//                                  chaos runs, e.g. "compile:hang:p=1,
//                                  seed=42" (same grammar as PYGB_FAULTS;
//                                  see docs/ROBUSTNESS.md)
//                --mem-limit N     governor memory budget in bytes; a
//                                  kernel charge that would cross it makes
//                                  the run fail with ResourceExhausted
//                                  instead of dying to the OOM killer
//                --op-timeout MS   governor per-operation deadline; an op
//                                  outliving it raises DeadlineExceeded at
//                                  its next checkpoint
//
//   cache subcommands (no graph file): --cache-info prints the module
//   cache directory, size, and environment stamp; --cache-clear empties
//   it. See docs/CACHE.md.
//
//   --health (no graph file): end-to-end readiness probe — generate a
//   1-element kernel, compile it (through the compile service when
//   PYGB_COMPILED=on), dlopen it, and run it. Emits a pygb.health JSON
//   document on stdout and exits nonzero if any stage fails, so an
//   orchestrator's readiness check exercises the exact pipeline user
//   requests will take. See docs/ROBUSTNESS.md.
//
// PYGB_TRACE=<file> / PYGB_METRICS=1 activate the same observability
// surfaces from the environment — see docs/OBSERVABILITY.md.
//
// Exercises the full public stack: direct file loading (§VIII), the DSL,
// whole-algorithm dispatch, and the observability layer.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/betweenness.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_count.hpp"
#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/jit/cache.hpp"
#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/loader.hpp"
#include "pygb/jit/module_key.hpp"
#include "pygb/obs/crash.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/obs.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

struct Options {
  std::string algorithm;
  std::string path;
  gbtl::IndexType source = 0;
  double damping = 0.85;
  double threshold = 1e-5;
  std::string tier = "dsl";
  std::size_t top = 10;
  std::string trace_path;
  bool stats = false;
  bool stats_json = false;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string crash_dir;
  std::string faults;
  std::uint64_t mem_limit = 0;   // 0 = unlimited
  std::uint64_t op_timeout = 0;  // 0 = no deadline
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " <bfs|sssp|pagerank|tc|cc|bc|info> <graph-file> [options]\n"
         "       " << argv0
      << " --cache-info | --cache-clear | --health\n"
         "  --source N   --damping X   --threshold X\n"
         "  --tier dsl|whole|native    --top K\n"
         "  --trace FILE (Chrome trace JSON)   --stats (metrics summary)\n"
         "  --stats-json (metrics snapshot as pygb.metrics JSON on stdout)\n"
         "  --metrics-json FILE  --metrics-prom FILE ('-' = stdout)\n"
         "  --crash-dir DIR (crash attribution reports; PYGB_CRASH_DIR)\n"
         "  --faults SPEC (deterministic fault injection; PYGB_FAULTS "
         "grammar)\n"
         "  --mem-limit BYTES (governor budget; PYGB_MEM_LIMIT_BYTES)\n"
         "  --op-timeout MS (per-op deadline; PYGB_OP_TIMEOUT_MS)\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  Options o;
  o.algorithm = argv[1];
  o.path = argv[2];
  for (int k = 3; k < argc; ++k) {
    const std::string flag = argv[k];
    auto value = [&]() -> std::string {
      if (k + 1 >= argc) usage(argv[0]);
      return argv[++k];
    };
    if (flag == "--source") {
      o.source = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--damping") {
      o.damping = std::stod(value());
    } else if (flag == "--threshold") {
      o.threshold = std::stod(value());
    } else if (flag == "--tier") {
      o.tier = value();
    } else if (flag == "--top") {
      o.top = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--trace") {
      o.trace_path = value();
    } else if (flag == "--stats") {
      o.stats = true;
    } else if (flag == "--stats-json") {
      o.stats_json = true;
    } else if (flag == "--metrics-json") {
      o.metrics_json_path = value();
    } else if (flag == "--metrics-prom") {
      o.metrics_prom_path = value();
    } else if (flag == "--crash-dir") {
      o.crash_dir = value();
    } else if (flag == "--faults") {
      o.faults = value();
    } else if (flag == "--mem-limit") {
      o.mem_limit = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--op-timeout") {
      o.op_timeout = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      std::cerr << "unknown option: " << flag << "\n";
      usage(argv[0]);
    }
  }
  if (o.tier != "dsl" && o.tier != "whole" && o.tier != "native") {
    usage(argv[0]);
  }
  return o;
}

void print_top_vector(const Vector& v, std::size_t top, const char* what) {
  std::vector<std::pair<double, gbtl::IndexType>> entries;
  for (gbtl::IndexType i = 0; i < v.size(); ++i) {
    if (v.has_element(i)) entries.push_back({v.get(i), i});
  }
  std::sort(entries.rbegin(), entries.rend());
  std::cout << "top " << std::min(top, entries.size()) << " by " << what
            << ":\n";
  for (std::size_t k = 0; k < top && k < entries.size(); ++k) {
    std::cout << "  vertex " << entries[k].second << "  " << what << " "
              << entries[k].first << "\n";
  }
}

int run_bfs(const Options& o, const Matrix& graph) {
  Vector levels(graph.nrows(), DType::kInt64);
  gbtl::IndexType depth = 0;
  if (o.tier == "native") {
    gbtl::Vector<std::int64_t> nat(graph.nrows());
    depth = algo::bfs_from(graph.typed<double>(), o.source, nat);
    std::cout << "depth " << depth << ", reached " << nat.nvals() << " / "
              << graph.nrows() << " vertices\n";
    return 0;
  }
  Vector frontier(graph.nrows(), DType::kBool);
  frontier.set(o.source, Scalar(true));
  depth = o.tier == "whole" ? algo::whole_bfs(graph, frontier, levels)
                            : algo::dsl_bfs(graph, frontier, levels);
  std::cout << "depth " << depth << ", reached " << levels.nvals() << " / "
            << graph.nrows() << " vertices\n";
  return 0;
}

int run_sssp(const Options& o, const Matrix& graph) {
  Vector path(graph.nrows(), DType::kFP64);
  path.set(o.source, 0.0);
  if (o.tier == "native") {
    gbtl::Vector<double> nat(graph.nrows());
    algo::sssp_from(graph.typed<double>(), o.source, nat);
    std::cout << "reached " << nat.nvals() << " vertices\n";
    return 0;
  }
  if (o.tier == "whole") {
    algo::whole_sssp(graph, path);
  } else {
    algo::dsl_sssp(graph, path);
  }
  std::cout << "reached " << path.nvals() << " vertices\n";
  double max_dist = 0;
  for (gbtl::IndexType v = 0; v < path.size(); ++v) {
    if (path.has_element(v)) max_dist = std::max(max_dist, path.get(v));
  }
  std::cout << "eccentricity of source " << o.source << ": " << max_dist
            << "\n";
  return 0;
}

int run_pagerank(const Options& o, const Matrix& graph) {
  Vector rank;
  if (o.tier == "native") {
    gbtl::Vector<double> nat(graph.nrows());
    const auto iters =
        algo::page_rank(graph.typed<double>(), nat, o.damping, o.threshold);
    std::cout << "converged in " << iters << " iterations\n";
    rank = Vector::adopt(std::move(nat));
  } else if (o.tier == "whole") {
    rank = Vector(graph.nrows(), DType::kFP64);
    const auto iters =
        algo::whole_page_rank(graph, rank, o.damping, o.threshold);
    std::cout << "converged in " << iters << " iterations\n";
  } else {
    rank = algo::dsl_page_rank(graph, o.damping, o.threshold);
  }
  std::cout << "rank mass: " << reduce(rank).to_double()
            << " (< 1 indicates dangling vertices)\n";
  print_top_vector(rank, o.top, "rank");
  return 0;
}

int run_tc(const Options& o, const Matrix& graph) {
  auto [lower, upper] = split_triangles(graph);
  std::int64_t triangles = 0;
  if (o.tier == "native") {
    triangles = algo::triangle_count<std::int64_t>(lower.typed<double>());
  } else if (o.tier == "whole") {
    triangles = algo::whole_triangle_count(lower);
  } else {
    triangles = algo::dsl_triangle_count(lower);
  }
  std::cout << "triangles: " << triangles << "\n";
  return 0;
}

int run_cc(const Options& o, const Matrix& graph) {
  if (o.tier == "native") {
    gbtl::Vector<std::int64_t> labels(graph.nrows());
    const auto rounds =
        algo::connected_components(graph.typed<double>(), labels);
    std::cout << "components: " << algo::count_components(labels) << " ("
              << rounds << " rounds)\n";
    return 0;
  }
  Vector labels(graph.nrows(), DType::kInt64);
  const auto rounds = o.tier == "whole"
                          ? algo::whole_connected_components(graph, labels)
                          : algo::dsl_connected_components(graph, labels);
  std::cout << "components: "
            << algo::count_components(labels.typed<std::int64_t>()) << " ("
            << rounds << " rounds)\n";
  return 0;
}

int run_bc(const Options& o, const Matrix& graph) {
  auto bc = algo::betweenness_centrality(graph.typed<double>());
  print_top_vector(Vector::adopt(std::move(bc)), o.top, "betweenness");
  return 0;
}

int run_cache_command(const std::string& cmd) {
  auto& reg = pygb::jit::Registry::instance();
  const std::string dir = reg.cache_dir();
  if (cmd == "--cache-clear") {
    reg.clear_disk_cache();
    std::cout << "cleared module cache at " << dir << "\n";
    return 0;
  }
  const auto info = pygb::jit::cache_info(dir);
  std::cout << "cache dir:   " << dir << "\n"
            << "modules:     " << info.modules << "\n"
            << "total bytes: " << info.total_bytes << "\n"
            << "quarantined: " << info.quarantined << "\n"
            << "failed logs: " << info.logs << "\n"
            << "stamp:       " << pygb::jit::cache_stamp() << "\n";
  if (const auto cap = pygb::jit::cache_max_bytes(); cap != 0) {
    std::cout << "max bytes:   " << cap << " (PYGB_CACHE_MAX_BYTES)\n";
  } else {
    std::cout << "max bytes:   unlimited\n";
  }
  return 0;
}

// --health: prove the whole JIT pipeline works RIGHT NOW — codegen,
// compile (via the persistent compile service when enabled), dlopen, and a
// real kernel invocation — rather than inferring readiness from "the
// process is up". Each stage is timed and reported individually so a
// failing probe names the broken layer. Output is a schema-versioned JSON
// document; exit status 0 only when every stage passed.
int run_health() {
  namespace fs = std::filesystem;
  using Clock = std::chrono::steady_clock;

  struct StageReport {
    const char* stage;
    bool ok = false;
    double ms = 0.0;
    std::string error;
  };
  std::vector<StageReport> stages;
  const auto run_stage = [&](const char* name, auto&& body) {
    StageReport rep;
    rep.stage = name;
    const auto t0 = Clock::now();
    try {
      rep.ok = body(&rep.error);
    } catch (const std::exception& e) {
      rep.error = e.what();
    }
    rep.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                 .count();
    stages.push_back(std::move(rep));
    return stages.back().ok;
  };

  // The probe kernel: fp64 + fp64 elementwise add over 1-element vectors.
  // Small enough to compile in well under a second, real enough to cross
  // every layer a production dispatch crosses.
  jit::OpRequest req;
  req.func = jit::func::kEWiseAddVV;
  req.c = DType::kFP64;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.binary_op = BinaryOp(BinaryOpName::kPlus);
  const std::string stamp = jit::cache_stamp();

  // Private scratch dir — the probe must not pollute (or be satisfied by)
  // the shared module cache: a cache hit would skip the compile stage and
  // the probe would vouch for a compiler that no longer works.
  const fs::path dir = fs::temp_directory_path() /
                       ("pygb_health_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string src_path = (dir / "health_probe.cpp").string();
  const std::string so_path = (dir / "health_probe.so").string();

  const auto svc_before = jit::compiled_state::snapshot();

  bool ok = run_stage("codegen", [&](std::string* err) {
    std::string source;
    source = jit::generate_source(req, stamp);
    std::ofstream out(src_path, std::ios::binary | std::ios::trunc);
    out << source;
    out.close();
    if (!out) {
      *err = "failed to write " + src_path;
      return false;
    }
    return true;
  });

  ok = ok && run_stage("compile", [&](std::string* err) {
    const auto res = jit::compile_module(src_path, so_path);
    if (!res.ok) *err = res.log.empty() ? "compile failed" : res.log;
    return res.ok;
  });

  jit::KernelFn fn = nullptr;
  ok = ok && run_stage("dlopen", [&](std::string* err) {
    fn = jit::load_kernel(so_path, err, stamp);
    return fn != nullptr;
  });

  ok = ok && run_stage("run", [&](std::string* err) {
    Vector va(1, DType::kFP64);
    Vector vb(1, DType::kFP64);
    Vector vc(1, DType::kFP64);
    va.set(0, 1.0);
    vb.set(0, 1.0);
    jit::KernelArgs args;
    args.c = &vc.typed<double>();
    args.a = &va.typed<double>();
    args.b = &vb.typed<double>();
    gbtl::detail::BackendScope bscope(req.backend);
    fn(&args);
    if (!vc.has_element(0) || vc.get(0) != 2.0) {
      *err = "kernel produced wrong result (expected c[0] == 2.0)";
      return false;
    }
    return true;
  });

  const auto svc_after = jit::compiled_state::snapshot();
  fs::remove_all(dir, ec);

  std::string out = "{\"schema\":\"pygb.health\",\"schema_version\":1,";
  out += "\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"compiler\":";
  obs::detail::append_json_string(out, jit::compiler_command());
  out += ",\"service\":{\"enabled\":";
  out += svc_after.enabled ? "true" : "false";
  out += ",\"used\":";
  out += svc_after.served > svc_before.served ? "true" : "false";
  out += ",\"worker_pid\":" + std::to_string(svc_after.worker_pid);
  out += ",\"breaker_open\":";
  out += svc_after.breaker_open ? "true" : "false";
  out += ",\"restarts\":" + std::to_string(svc_after.restarts);
  out += "},\"stages\":[";
  bool first = true;
  for (const auto& s : stages) {
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":";
    obs::detail::append_json_string(out, s.stage);
    out += ",\"ok\":";
    out += s.ok ? "true" : "false";
    out += ",\"ms\":" + std::to_string(s.ms);
    if (!s.ok) {
      out += ",\"error\":";
      obs::detail::append_json_string(out, s.error);
    }
    out += "}";
  }
  out += "]}";
  std::cout << out << "\n";
  return ok ? 0 : 1;
}

int run_info(const Matrix& graph) {
  std::cout << "shape: " << graph.nrows() << " x " << graph.ncols()
            << "\nstored edges: " << graph.nvals()
            << "\ndtype: " << display_name(graph.dtype()) << "\n";
  Vector degrees(graph.nrows(), DType::kFP64);
  degrees[None] = reduce_rows(graph, PlusMonoid());
  std::cout << "vertices with out-edges: " << degrees.nvals() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--cache-info") == 0 ||
                    std::strcmp(argv[1], "--cache-clear") == 0)) {
    return run_cache_command(argv[1]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--health") == 0) {
    return run_health();
  }
  const Options o = parse(argc, argv);
  if (!o.trace_path.empty()) pygb::obs::set_tracing_enabled(true);
  if (o.stats || o.stats_json || !o.metrics_json_path.empty() ||
      !o.metrics_prom_path.empty()) {
    pygb::obs::set_metrics_enabled(true);
  }
  if (!o.crash_dir.empty()) pygb::crash::install(o.crash_dir.c_str());
  // Machine output on stdout (--stats-json, or a "-" metrics destination)
  // must stay parseable: route the human report to stderr for those runs.
  const bool machine_stdout = o.stats_json || o.metrics_json_path == "-" ||
                              o.metrics_prom_path == "-";
  std::streambuf* const human_buf = std::cout.rdbuf();
  if (machine_stdout) std::cout.rdbuf(std::cerr.rdbuf());
  try {
    if (!o.faults.empty()) pygb::faultinj::configure(o.faults);
    if (o.mem_limit != 0) pygb::governor::set_mem_limit_bytes(o.mem_limit);
    if (o.op_timeout != 0) pygb::governor::set_op_timeout_ms(o.op_timeout);
    Matrix graph = Matrix::from_file(o.path);
    std::cout << "loaded " << o.path << ": " << graph.nrows()
              << " vertices, " << graph.nvals() << " edges\n";

    int rc = 1;
    if (o.algorithm == "bfs") {
      rc = run_bfs(o, graph);
    } else if (o.algorithm == "sssp") {
      rc = run_sssp(o, graph);
    } else if (o.algorithm == "pagerank") {
      rc = run_pagerank(o, graph);
    } else if (o.algorithm == "tc") {
      rc = run_tc(o, graph);
    } else if (o.algorithm == "cc") {
      rc = run_cc(o, graph);
    } else if (o.algorithm == "bc") {
      rc = run_bc(o, graph);
    } else if (o.algorithm == "info") {
      rc = run_info(graph);
    } else {
      usage(argv[0]);
    }

    if (o.stats) {
      std::cout << pygb::obs::metrics_summary();
    } else if (!o.stats_json) {
      const auto st = pygb::jit::Registry::instance().stats();
      std::cout << "[dispatch: " << st.lookups << " ops, " << st.static_hits
                << " static, " << st.memory_hits << " memory, "
                << st.disk_hits << " disk, " << st.compiles << " compiled, "
                << st.interp_dispatches << " interpreted]\n";
    }
    std::cout.rdbuf(human_buf);  // end of the human report
    if (o.stats_json) {
      std::cout << pygb::obs::metrics_json() << "\n";
    }
    const auto emit_metrics = [](const std::string& dest,
                                 const std::string& content) {
      if (dest == "-") {
        std::cout << content;
        return;
      }
      std::string error;
      if (!pygb::obs::write_file_atomic(dest, content, &error)) {
        std::cerr << "error writing metrics to " << dest << ": " << error
                  << "\n";
      }
    };
    if (!o.metrics_json_path.empty()) {
      emit_metrics(o.metrics_json_path, pygb::obs::metrics_json() + "\n");
    }
    if (!o.metrics_prom_path.empty()) {
      emit_metrics(o.metrics_prom_path, pygb::obs::metrics_prometheus());
    }
    if (!o.trace_path.empty()) {
      std::string error;
      if (pygb::obs::write_chrome_trace(o.trace_path, &error)) {
        (machine_stdout ? std::cerr : std::cout)
            << "trace written to " << o.trace_path << " ("
            << pygb::obs::trace_event_count() << " events)\n";
      } else {
        std::cerr << "error writing trace: " << error << "\n";
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::cout.rdbuf(human_buf);
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
