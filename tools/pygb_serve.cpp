// tools/pygb_serve.cpp — the pygb multi-tenant graph-analytics daemon
// (docs/SERVING.md).
//
//   pygb_serve --socket /tmp/pygb.sock
//   pygb_serve --port 7432 --threads 8 --mem-limit 268435456
//
// Accepts length-prefixed DSL-program requests (serve/protocol.hpp), runs
// them with per-request governor isolation, sheds load with typed
// `overloaded` replies, and drains gracefully: SIGTERM/SIGINT stop the
// accept loop, in-flight requests finish under --drain-ms, metrics flush,
// and the process exits 0.
//
// Flags mirror pygb_cli (every one shadows an env knob):
//   --socket PATH     listen on a Unix socket (default /tmp/pygb_serve.sock)
//   --port N          listen on loopback TCP instead (0 = ephemeral)
//   --threads N       worker threads               (PYGB_SERVE_THREADS)
//   --max-queue N     pending-connection cap       (PYGB_SERVE_MAX_QUEUE)
//   --request-timeout MS  per-request deadline  (PYGB_SERVE_REQUEST_TIMEOUT_MS)
//   --drain-ms MS     drain budget at shutdown     (PYGB_SERVE_DRAIN_MS)
//   --mem-limit BYTES process governor budget      (PYGB_MEM_LIMIT_BYTES)
//   --op-timeout MS   per-op deadline default      (PYGB_OP_TIMEOUT_MS)
//   --metrics-json F  flush pygb.metrics JSON here (PYGB_METRICS_JSON)
//   --metrics-prom F  flush Prometheus text here   (PYGB_METRICS_PROM)
//   --faults SPEC     deterministic fault injection (PYGB_FAULTS)
#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/obs.hpp"
#include "serve/server.hpp"

namespace {

pygb::serve::Server* g_server = nullptr;

extern "C" void handle_shutdown(int) {
  // AS-safe: one write(2) to the server's self-pipe. The accept loop does
  // the actual draining on its own thread.
  if (g_server != nullptr) g_server->request_shutdown();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH | --port N] [--threads N]\n"
               "  [--max-queue N] [--request-timeout MS] [--drain-ms MS]\n"
               "  [--mem-limit BYTES] [--op-timeout MS]\n"
               "  [--metrics-json FILE] [--metrics-prom FILE]\n"
               "  [--faults SPEC]\n",
               argv0);
  std::exit(2);
}

std::uint64_t arg_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bad number: %s\n", s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  pygb::serve::ServerConfig cfg = pygb::serve::ServerConfig::from_env();
  std::string metrics_json, metrics_prom, faults;
  bool port_set = false;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    auto value = [&]() -> const char* {
      if (k + 1 >= argc) usage(argv[0]);
      return argv[++k];
    };
    if (flag == "--socket") {
      cfg.target = std::string("unix:") + value();
    } else if (flag == "--port") {
      cfg.target = std::string("tcp:") + value();
      port_set = true;
    } else if (flag == "--threads") {
      cfg.threads = arg_u64(value());
    } else if (flag == "--max-queue") {
      cfg.admission.max_queue = arg_u64(value());
    } else if (flag == "--request-timeout") {
      cfg.request_timeout_ms = arg_u64(value());
    } else if (flag == "--drain-ms") {
      cfg.drain_ms = arg_u64(value());
    } else if (flag == "--mem-limit") {
      pygb::governor::set_mem_limit_bytes(arg_u64(value()));
      // Admission defaults derive from the limit; recompute.
      cfg.admission = pygb::serve::AdmissionConfig::from_env();
    } else if (flag == "--op-timeout") {
      pygb::governor::set_op_timeout_ms(arg_u64(value()));
    } else if (flag == "--metrics-json") {
      metrics_json = value();
    } else if (flag == "--metrics-prom") {
      metrics_prom = value();
    } else if (flag == "--faults") {
      faults = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      usage(argv[0]);
    }
  }
  (void)port_set;

  if (!faults.empty()) pygb::faultinj::configure(faults);
  if (!metrics_json.empty() || !metrics_prom.empty()) {
    pygb::obs::set_metrics_enabled(true);
    pygb::obs::set_export_paths(metrics_json, metrics_prom);
  }

  pygb::serve::Server server(cfg);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "pygb_serve: %s\n", error.c_str());
    return 1;
  }

  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = handle_shutdown;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Line-buffered, parseable announcement — tests and the bench harness
  // wait for this to learn the (possibly ephemeral) endpoint.
  std::printf("pygb_serve listening on %s (threads=%llu max_queue=%llu)\n",
              server.endpoint().c_str(),
              static_cast<unsigned long long>(cfg.threads),
              static_cast<unsigned long long>(cfg.admission.max_queue));
  std::fflush(stdout);

  const int rc = server.run();
  std::printf("pygb_serve drained, exiting %d\n", rc);
  return rc;
}
