// bench_fig10_pagerank — Fig. 10, PageRank panel: seven dispatched
// operations per iteration in the DSL tier (the paper's count).
#include "fig10_common.hpp"

#include "algorithms/pagerank.hpp"

namespace {

using namespace pygb;  // NOLINT

void BM_PageRank_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector rank = algo::dsl_page_rank(graph);
    benchmark::DoNotOptimize(rank.nvals());
  }
  fig10::annotate(state, graph.nvals());
}

void BM_PageRank_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector rank(n, DType::kFP64);
    benchmark::DoNotOptimize(algo::whole_page_rank(graph, rank));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_PageRank_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& graph = fig10::paper_matrix(n, false).typed<double>();
  for (auto _ : state) {
    gbtl::Vector<double> rank(n);
    benchmark::DoNotOptimize(pygb::algo::page_rank(graph, rank));
  }
  fig10::annotate(state, graph.nvals());
}

}  // namespace

BENCHMARK(BM_PageRank_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
