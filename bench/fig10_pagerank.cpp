// bench_fig10_pagerank — Fig. 10, PageRank panel: seven dispatched
// operations per iteration in the DSL tier (the paper's count).
#include "fig10_common.hpp"

#include "bench_json.hpp"

#include <chrono>

#include "algorithms/pagerank.hpp"

namespace {

using namespace pygb;  // NOLINT

void BM_PageRank_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector rank = algo::dsl_page_rank(graph);
    benchmark::DoNotOptimize(rank.nvals());
  }
  fig10::annotate(state, graph.nvals());
}

/// DSL tier with the lazy op DAG on: the four-value-op iteration body is
/// fused into one chain kernel per iteration (docs/FUSION.md).
void BM_PageRank_DSL_FusedDAG(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  const bool saved = fusion::enabled();
  fusion::set_enabled(true);
  for (auto _ : state) {
    Vector rank = algo::dsl_page_rank(graph);
    benchmark::DoNotOptimize(rank.nvals());
  }
  fusion::set_enabled(saved);
  fig10::annotate(state, graph.nvals());
}

/// Same DSL tier with fusion disabled: one dispatch per operation — the
/// unfused baseline the fused series is compared against in CI
/// (scripts/bench_compare.py).
void BM_PageRank_DSL_Unfused(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  const bool saved = fusion::enabled();
  fusion::set_enabled(false);
  for (auto _ : state) {
    Vector rank = algo::dsl_page_rank(graph);
    benchmark::DoNotOptimize(rank.nvals());
  }
  fusion::set_enabled(saved);
  fig10::annotate(state, graph.nvals());
}

void BM_PageRank_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector rank(n, DType::kFP64);
    benchmark::DoNotOptimize(algo::whole_page_rank(graph, rank));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_PageRank_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& graph = fig10::paper_matrix(n, false).typed<double>();
  for (auto _ : state) {
    gbtl::Vector<double> rank(n);
    benchmark::DoNotOptimize(pygb::algo::page_rank(graph, rank));
  }
  fig10::annotate(state, graph.nvals());
}

/// Worker-pool thread sweep on a skewed R-MAT graph: range(0) = scale,
/// range(1) = GBTL_NUM_THREADS, range(2) = backend (0 scalar, 1 simd).
/// Reports speedup_vs_1t per (series, backend) and speedup_vs_scalar for
/// the simd runs (docs/BACKENDS.md). The backend axis varies fastest, so
/// each scalar run seeds the baseline its simd twin is compared against.
void BM_PageRank_ThreadSweep(benchmark::State& state) {
  const auto scale = static_cast<unsigned>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const bool simd = state.range(2) != 0;
  const auto& graph = fig10::rmat_matrix(scale).typed<double>();
  fig10::ThreadCountGuard guard(threads);
  fig10::BackendGuard backend(simd);
  double total_seconds = 0.0;
  std::int64_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    gbtl::Vector<double> rank(graph.nrows());
    benchmark::DoNotOptimize(pygb::algo::page_rank(graph, rank));
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++iters;
  }
  fig10::annotate_sweep(state, "pagerank", scale, threads, graph.nvals(),
                        iters > 0 ? total_seconds / iters : 0.0,
                        simd ? "simd" : "scalar");
}

}  // namespace

BENCHMARK(BM_PageRank_ThreadSweep)
    ->ArgsProduct({{12, 13}, {1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_PageRank_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_DSL_FusedDAG)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_DSL_Unfused)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);

PYGB_BENCH_JSON_MAIN("fig10_pagerank");
