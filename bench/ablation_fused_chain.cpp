// bench_ablation_fused_chain — the §V planned feature, quantified:
// "Grouping more operations into a single module will reduce the overhead
// of function redirection in Python and shorten compile times". Measures
// the PageRank iteration body (5 statements) executed as
//   (a) five per-operation dispatches through the DSL, and
//   (b) one fused-chain dispatch into a single compiled module,
// both with and without the CPython dispatch-cost model, plus the
// compile-time comparison (five modules vs one).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "generators/erdos_renyi.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

struct Fixture {
  Matrix m;          // normalized, damped transition matrix
  Vector rank;
  Vector new_rank;
  Vector delta;
  double teleport;
};

Fixture& fixture_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Fixture> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto el = gen::paper_graph(n, 42, /*symmetric=*/true);
    Matrix graph = Matrix::from_edge_list(el);
    Matrix m(n, n, DType::kFP64);
    m[None] = graph;
    normalize_rows(m);
    {
      With ctx(UnaryOp("Times", 0.85));
      m[None] = apply(m);
    }
    Fixture f{m, Vector(n, DType::kFP64), Vector(n, DType::kFP64),
              Vector(n, DType::kFP64), 0.15 / static_cast<double>(n)};
    f.rank[Slice::all()] = 1.0 / static_cast<double>(n);
    it = cache.emplace(n, std::move(f)).first;
  }
  return it->second;
}

FusedChain make_iteration_chain() {
  FusedChain iter("bench_pr_iteration");
  const int rank = iter.vector_param("rank");
  const int mat = iter.matrix_param("m");
  const int new_rank = iter.vector_param("new_rank");
  const int delta = iter.vector_param("delta");
  const int teleport = iter.scalar_param("teleport");
  iter.vxm(new_rank, rank, mat, ArithmeticSemiring(),
           Accumulator("Second"));
  iter.apply_bound(new_rank, new_rank, BinaryOp("Plus"), teleport);
  iter.ewise_add(delta, rank, new_rank, BinaryOp("Minus"));
  iter.ewise_mult(delta, delta, delta, BinaryOp("Times"));
  iter.reduce(delta, PlusMonoid());
  return iter;
}

double run_per_op(Fixture& f) {
  {
    With ctx(Accumulator("Second"), ArithmeticSemiring());
    f.new_rank[None] += matmul(f.rank, f.m);
  }
  {
    With ctx(UnaryOp("Plus", f.teleport));
    f.new_rank[None] = apply(f.new_rank);
  }
  {
    With ctx(BinaryOp("Minus"));
    f.delta[None] = f.rank + f.new_rank;
  }
  f.delta[None] = f.delta * f.delta;
  return reduce(f.delta).to_double();
}

void BM_Iteration_PerOpDispatch(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_per_op(f));
  }
}

void BM_Iteration_PerOpDispatch_CPythonModel(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  set_interp_overhead_ns(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_per_op(f));
  }
  set_interp_overhead_ns(0);
}

void BM_Iteration_FusedChain(benchmark::State& state) {
  if (!jit::compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  static FusedChain chain = make_iteration_chain();
  chain.run({f.rank, f.m, f.new_rank, f.delta, f.teleport});  // warm
  for (auto _ : state) {
    const auto r =
        chain.run({f.rank, f.m, f.new_rank, f.delta, f.teleport});
    benchmark::DoNotOptimize(r.scalar.to_double());
  }
}

void BM_Iteration_FusedChain_CPythonModel(benchmark::State& state) {
  if (!jit::compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  static FusedChain chain = make_iteration_chain();
  chain.run({f.rank, f.m, f.new_rank, f.delta, f.teleport});
  set_interp_overhead_ns(1500);
  for (auto _ : state) {
    const auto r =
        chain.run({f.rank, f.m, f.new_rank, f.delta, f.teleport});
    benchmark::DoNotOptimize(r.scalar.to_double());
  }
  set_interp_overhead_ns(0);
}

}  // namespace

#define FUSED_SWEEP \
  ->RangeMultiplier(4)->Range(64, 4096)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_Iteration_PerOpDispatch) FUSED_SWEEP;
BENCHMARK(BM_Iteration_PerOpDispatch_CPythonModel) FUSED_SWEEP;
BENCHMARK(BM_Iteration_FusedChain) FUSED_SWEEP;
BENCHMARK(BM_Iteration_FusedChain_CPythonModel) FUSED_SWEEP;

BENCHMARK_MAIN();
