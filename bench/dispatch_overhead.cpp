// bench_dispatch — the DSL abstraction penalty at operation granularity:
// one small mxv through the full DSL pipeline (expression object, context
// search, mask coercion, key construction, registry lookup, type-erased
// call) versus the direct templated GBTL call, across sizes — the
// per-operation component of Fig. 10's small-input gap. Also measures the
// optional CPython-overhead model's contribution and the observability
// layer's cost: with tracing/metrics DISABLED (the default), BM_Mxv_DSL
// must stay within noise of the seed baseline — each hook is one relaxed
// atomic load + branch (BM_ObsSpanDisabled isolates it).
#include <benchmark/benchmark.h>

#include <map>

#include "gbtl/gbtl.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/obs/obs.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

struct Fixture {
  Matrix graph;
  Vector u;
  Vector w;
};

Fixture& fixture_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Fixture> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto el = gen::paper_graph(n, 42, /*symmetric=*/true);
    Fixture f{Matrix::from_edge_list(el), Vector(n, DType::kFP64),
              Vector(n, DType::kFP64)};
    f.u[Slice::all()] = 1.0;
    it = cache.emplace(n, std::move(f)).first;
  }
  return it->second;
}

void BM_Mxv_DSL(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  for (auto _ : state) {
    f.w[None] = matmul(f.graph, f.u);
    benchmark::DoNotOptimize(f.w.nvals());
  }
}

void BM_Mxv_DSL_WithCPythonModel(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  set_interp_overhead_ns(1500);
  for (auto _ : state) {
    f.w[None] = matmul(f.graph, f.u);
    benchmark::DoNotOptimize(f.w.nvals());
  }
  set_interp_overhead_ns(0);
}

void BM_Mxv_NativeGBTL(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  const auto& g = f.graph.typed<double>();
  const auto& u = f.u.typed<double>();
  auto& w = f.w.typed<double>();
  for (auto _ : state) {
    gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::ArithmeticSemiring<double>{}, g, u);
    benchmark::DoNotOptimize(w.nvals());
  }
}

void BM_ExpressionConstructionOnly(benchmark::State& state) {
  // Cost of building (and discarding) the deferred expression object —
  // no evaluation happens.
  auto& f = fixture_of(256);
  for (auto _ : state) {
    auto e = matmul(f.graph, f.u);
    benchmark::DoNotOptimize(&e);
  }
}

void BM_ContextPushPop(benchmark::State& state) {
  for (auto _ : state) {
    With ctx(MinPlusSemiring(), Accumulator("Min"), Replace);
    benchmark::DoNotOptimize(context_depth());
  }
}

// --- observability overhead ------------------------------------------------

void BM_ObsSpanDisabled(benchmark::State& state) {
  // The disabled-hook cost paid at every instrumented site: one relaxed
  // load + branch, no allocation, no event.
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench.noop");
    benchmark::DoNotOptimize(span.active());
  }
}

void BM_Mxv_DSL_TracingEnabled(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  obs::set_tracing_enabled(true);
  obs::clear_trace_events();
  int since_clear = 0;
  for (auto _ : state) {
    f.w[None] = matmul(f.graph, f.u);
    benchmark::DoNotOptimize(f.w.nvals());
    if (++since_clear == 4096) {  // keep the event buffers bounded
      state.PauseTiming();
      obs::clear_trace_events();
      since_clear = 0;
      state.ResumeTiming();
    }
  }
  obs::set_tracing_enabled(false);
  obs::clear_trace_events();
}

void BM_Mxv_DSL_MetricsEnabled(benchmark::State& state) {
  auto& f = fixture_of(static_cast<gbtl::IndexType>(state.range(0)));
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    f.w[None] = matmul(f.graph, f.u);
    benchmark::DoNotOptimize(f.w.nvals());
  }
  obs::set_metrics_enabled(false);
}

}  // namespace

#define DISPATCH_SWEEP \
  ->RangeMultiplier(4)->Range(64, 16384)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_Mxv_DSL) DISPATCH_SWEEP;
BENCHMARK(BM_Mxv_DSL_WithCPythonModel) DISPATCH_SWEEP;
BENCHMARK(BM_Mxv_NativeGBTL) DISPATCH_SWEEP;
BENCHMARK(BM_ExpressionConstructionOnly);
BENCHMARK(BM_ContextPushPop);
BENCHMARK(BM_ObsSpanDisabled);
BENCHMARK(BM_Mxv_DSL_TracingEnabled)
    ->RangeMultiplier(16)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Mxv_DSL_MetricsEnabled)
    ->RangeMultiplier(16)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
