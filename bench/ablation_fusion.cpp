// bench_ablation_fusion — the §IV deferred-evaluation design points:
//   * C[None] = A + B  (in-place: the expression evaluates into the
//     existing container; no fresh output allocation) vs
//   * C = A + B        (rebind: a new container per evaluation), and
//   * C(region) = A @ B (GBTL cannot fuse op+assign: forced temporary) vs
//     the full-container path that skips the temporary.
#include <benchmark/benchmark.h>

#include <map>

#include "generators/erdos_renyi.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

const Matrix& graph_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Matrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto el = gen::paper_graph(n, 42, /*symmetric=*/true);
    it = cache.emplace(n, Matrix::from_edge_list(el)).first;
  }
  return it->second;
}

void BM_EWise_InPlace(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& a = graph_of(n);
  Matrix c(n, n, DType::kFP64);
  for (auto _ : state) {
    c[None] = a + a;  // reuses the existing container
    benchmark::DoNotOptimize(c.nvals());
  }
}

void BM_EWise_Rebind(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& a = graph_of(n);
  Matrix c(n, n, DType::kFP64);
  for (auto _ : state) {
    c = a + a;  // fresh container every evaluation (Python rebinding)
    benchmark::DoNotOptimize(c.nvals());
  }
}

void BM_SubAssign_ForcedTemporary(benchmark::State& state) {
  // §IV: C[0:m, 0:m] = A' * A' with m < n cannot be expressed as one fused
  // GBTL call; the expression lands in a temporary, then assign copies it
  // into the region.
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix sub =
      graph_of(n)(Slice(0, n - 1), Slice(0, n - 1)).extract();
  Matrix c(n, n, DType::kFP64);
  for (auto _ : state) {
    c(Slice(0, n - 1), Slice(0, n - 1)) = sub * sub;
    benchmark::DoNotOptimize(c.nvals());
  }
}

void BM_FullAssign_NoTemporary(benchmark::State& state) {
  // The whole-container region skips the temporary (evaluates in place);
  // same operand sizes as the forced-temporary case above.
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix sub =
      graph_of(n)(Slice(0, n - 1), Slice(0, n - 1)).extract();
  Matrix c(n - 1, n - 1, DType::kFP64);
  for (auto _ : state) {
    c(Slice(0, n - 1), Slice(0, n - 1)) = sub * sub;
    benchmark::DoNotOptimize(c.nvals());
  }
}

}  // namespace

#define FUSION_SWEEP \
  ->RangeMultiplier(4)->Range(256, 4096)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_EWise_InPlace) FUSION_SWEEP;
BENCHMARK(BM_EWise_Rebind) FUSION_SWEEP;
BENCHMARK(BM_SubAssign_ForcedTemporary) FUSION_SWEEP;
BENCHMARK(BM_FullAssign_NoTemporary) FUSION_SWEEP;

BENCHMARK_MAIN();
