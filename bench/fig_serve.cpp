// bench/fig_serve.cpp — pygb_serve load generator: concurrent mixed
// BFS/PageRank/SSSP traffic against the server, reporting tail latency and
// throughput (docs/SERVING.md).
//
// By default the server runs IN-PROCESS (own worker pool, real sockets on
// a private Unix path), so the bench is hermetic and CI-friendly; pass
// --connect unix:<path>|tcp:<port> to drive an external pygb_serve
// instead (the serve-chaos CI job does this, with PYGB_FAULTS armed in the
// daemon).
//
// Emits BENCH_serve.json ("pygb.bench" schema, consumable by
// scripts/bench_compare.py): one record per traffic class plus an
// aggregate, with p50/p99 round-trip latency and requests/second in the
// counters. Every reply must be a TYPED response — any transport-level
// failure or unparseable reply counts as a defect in the `errors` counter
// and fails the run.
//
// Flags: --clients N (default 8), --requests N per client (default 12),
//        --connect TARGET (default: in-process), --threads N (server).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using pygb::serve::Code;
using pygb::serve::FrameStatus;
using pygb::serve::Request;
using pygb::serve::Response;

struct Sample {
  std::string klass;  ///< "bfs" / "pagerank" / "sssp"
  std::uint64_t latency_ns = 0;
  Code code = Code::kInternal;
};

struct ClientStats {
  std::vector<Sample> samples;
  std::uint64_t transport_errors = 0;
};

/// One request round trip. False on any transport/parse failure.
bool round_trip(const std::string& target, const Request& req,
                Sample& out) {
  std::string error;
  const int fd = pygb::serve::connect_client(target, error);
  if (fd < 0) return false;
  const auto start = std::chrono::steady_clock::now();
  bool ok = pygb::serve::write_frame(fd, pygb::serve::render_request(req));
  std::string payload;
  if (ok) {
    ok = pygb::serve::read_frame(fd, payload,
                                 pygb::serve::max_request_bytes()) ==
         FrameStatus::kOk;
  }
  ::close(fd);
  if (!ok) return false;
  Response resp;
  if (!pygb::serve::parse_response(payload, resp, error)) return false;
  out.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  out.code = resp.code;
  return true;
}

void client_main(const std::string& target, int requests, int client_id,
                 ClientStats& stats) {
  // Mixed traffic: each client cycles bfs → pagerank → sssp over a small
  // set of shared graphs (cache hits after warmup, like a real tenant mix).
  const char* algos[3] = {"bfs", "pagerank", "sssp"};
  const char* graphs[3] = {"er:128", "ring:256", "er:96"};
  for (int i = 0; i < requests; ++i) {
    Request req;
    req.algo = algos[(client_id + i) % 3];
    req.graph = graphs[i % 3];
    req.source = 0;
    req.max_iters = 50;
    Sample s;
    s.klass = req.algo;
    if (!round_trip(target, req, s)) {
      ++stats.transport_errors;
      continue;
    }
    stats.samples.push_back(std::move(s));
  }
}

std::uint64_t percentile_ns(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 8;
  int requests = 12;
  std::uint64_t threads = 4;
  std::string connect;
  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    auto value = [&]() -> const char* {
      if (k + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++k];
    };
    if (flag == "--clients") {
      clients = std::max(1, std::atoi(value()));
    } else if (flag == "--requests") {
      requests = std::max(1, std::atoi(value()));
    } else if (flag == "--threads") {
      threads = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--connect") {
      connect = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  pygb::obs::set_metrics_enabled(true);

  // In-process server unless --connect names an external one.
  pygb::serve::Server* server = nullptr;
  std::thread server_thread;
  std::string target = connect;
  if (connect.empty()) {
    pygb::serve::ServerConfig cfg = pygb::serve::ServerConfig::from_env();
    cfg.target =
        "unix:/tmp/pygb_serve_bench_" + std::to_string(::getpid()) + ".sock";
    cfg.threads = threads;
    server = new pygb::serve::Server(cfg);
    std::string error;
    if (!server->start(error)) {
      std::fprintf(stderr, "fig_serve: server start failed: %s\n",
                   error.c_str());
      return 1;
    }
    target = server->endpoint();
    server_thread = std::thread([server] { server->run(); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back(client_main, target, requests, c,
                      std::ref(stats[static_cast<std::size_t>(c)]));
  }
  for (std::thread& t : pool) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (server != nullptr) {
    server->request_shutdown();
    server_thread.join();
    delete server;
  }

  // Aggregate.
  std::map<std::string, std::vector<std::uint64_t>> by_class;
  std::vector<std::uint64_t> all;
  std::uint64_t ok = 0, shed = 0, failed = 0, transport = 0;
  for (const ClientStats& cs : stats) {
    transport += cs.transport_errors;
    for (const Sample& s : cs.samples) {
      all.push_back(s.latency_ns);
      by_class[s.klass].push_back(s.latency_ns);
      if (s.code == Code::kOk) {
        ++ok;
      } else if (s.code == Code::kInternal ||
                 s.code == Code::kInvalidRequest) {
        ++failed;  // a well-formed bench request should never see these
      } else {
        // overloaded / shutting_down / deadline / resource / cancelled:
        // typed degradation — exactly what chaos runs are meant to elicit.
        ++shed;
      }
    }
  }

  std::vector<pygb::benchjson::RunRecord> records;
  auto add_record = [&](const std::string& name,
                        std::vector<std::uint64_t>& lat) {
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (std::uint64_t v : lat) sum += static_cast<double>(v);
    pygb::benchjson::RunRecord rec;
    rec.name = name;
    rec.iterations = static_cast<std::int64_t>(lat.size());
    rec.real_ns = lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
    rec.cpu_ns = rec.real_ns;
    rec.counters.emplace_back(
        "p50_ms", static_cast<double>(percentile_ns(lat, 0.50)) / 1e6);
    rec.counters.emplace_back(
        "p99_ms", static_cast<double>(percentile_ns(lat, 0.99)) / 1e6);
    records.push_back(std::move(rec));
  };
  for (auto& [klass, lat] : by_class) {
    add_record("serve/" + klass, lat);
  }
  add_record("serve/all", all);
  if (!records.empty()) {
    auto& agg = records.back();
    agg.counters.emplace_back("clients", static_cast<double>(clients));
    agg.counters.emplace_back("threads", static_cast<double>(threads));
    agg.counters.emplace_back(
        "throughput_rps",
        wall_s > 0 ? static_cast<double>(ok) / wall_s : 0.0);
    agg.counters.emplace_back("ok", static_cast<double>(ok));
    agg.counters.emplace_back("shed", static_cast<double>(shed));
    agg.counters.emplace_back("failed", static_cast<double>(failed));
    agg.counters.emplace_back("transport_errors",
                              static_cast<double>(transport));
  }

  std::printf(
      "serve bench: %d clients x %d requests  ok=%llu shed=%llu "
      "failed=%llu transport_errors=%llu  wall=%.2fs\n",
      clients, requests, static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(transport), wall_s);

  const int rc = pygb::benchjson::write_artifact("serve", records);
  // Transport-level failures mean a reply was NOT typed, and internal /
  // invalid_request replies to well-formed requests mean the degradation
  // contract broke — the two things this server promises never to do.
  if (transport != 0 || failed != 0) {
    std::fprintf(stderr,
                 "fig_serve: FAIL — %llu transport errors, %llu untyped/"
                 "failed replies\n",
                 static_cast<unsigned long long>(transport),
                 static_cast<unsigned long long>(failed));
    return 1;
  }
  return rc;
}
