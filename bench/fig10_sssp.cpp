// bench_fig10_sssp — Fig. 10, SSSP panel. The paper's algorithm performs
// |V| mxv relaxations (one dispatched op per round in the DSL tier).
#include "fig10_common.hpp"

#include "bench_json.hpp"

#include "algorithms/sssp.hpp"

namespace {

using namespace pygb;  // NOLINT

void BM_SSSP_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, true);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector path(n, DType::kFP64);
    path.set(0, 0.0);
    algo::dsl_sssp(graph, path);
    benchmark::DoNotOptimize(path.nvals());
  }
  fig10::annotate(state, graph.nvals());
}

void BM_SSSP_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, true);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector path(n, DType::kFP64);
    path.set(0, 0.0);
    algo::whole_sssp(graph, path);
    benchmark::DoNotOptimize(path.nvals());
  }
  fig10::annotate(state, graph.nvals());
}

void BM_SSSP_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& graph = fig10::paper_matrix(n, true).typed<double>();
  for (auto _ : state) {
    gbtl::Vector<double> path(n);
    path.setElement(0, 0.0);
    pygb::algo::sssp(graph, path);
    benchmark::DoNotOptimize(path.nvals());
  }
  fig10::annotate(state, graph.nvals());
}

}  // namespace

// |V| rounds of mxv make SSSP the heaviest panel; the sweep stops at 2048.
BENCHMARK(BM_SSSP_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SSSP_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SSSP_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Unit(benchmark::kMillisecond);

PYGB_BENCH_JSON_MAIN("fig10_sssp");
