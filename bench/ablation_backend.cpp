// bench_ablation_backend — the §V design-space ablation: the same
// operations executed through (a) build-time-instantiated kernels,
// (b) warm JIT modules, and (c) the interpreted "union type" fallback the
// paper rejected. Expected shape: static ≈ jit ≪ interp, with interp's
// penalty growing with nnz (per-element indirect dispatch + staging).
#include <benchmark/benchmark.h>

#include <map>

#include "generators/erdos_renyi.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using jit::Mode;
using jit::Registry;

const Matrix& graph_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Matrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto el = gen::paper_graph(n, 42, /*symmetric=*/true);
    it = cache.emplace(n, Matrix::from_edge_list(el)).first;
  }
  return it->second;
}

template <Mode M>
void BM_Mxv(benchmark::State& state) {
  auto& reg = Registry::instance();
  if (M == Mode::kJit && !reg.compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = graph_of(n);
  Vector u(n, DType::kFP64);
  u[Slice::all()] = 1.0;
  Vector w(n, DType::kFP64);
  const auto saved = reg.mode();
  reg.set_mode(M);
  w[None] = matmul(graph, u);  // warm any JIT module outside the loop
  for (auto _ : state) {
    w[None] = matmul(graph, u);
    benchmark::DoNotOptimize(w.nvals());
  }
  reg.set_mode(saved);
}

template <Mode M>
void BM_EWiseAdd(benchmark::State& state) {
  auto& reg = Registry::instance();
  if (M == Mode::kJit && !reg.compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = graph_of(n);
  Matrix c(n, n, DType::kFP64);
  const auto saved = reg.mode();
  reg.set_mode(M);
  c[None] = graph + graph;
  for (auto _ : state) {
    c[None] = graph + graph;
    benchmark::DoNotOptimize(c.nvals());
  }
  reg.set_mode(saved);
}

}  // namespace

BENCHMARK(BM_Mxv<Mode::kStatic>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_Mxv_StaticKernels");
BENCHMARK(BM_Mxv<Mode::kJit>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_Mxv_JitWarm");
BENCHMARK(BM_Mxv<Mode::kInterp>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_Mxv_InterpRejectedDesign");

BENCHMARK(BM_EWiseAdd<Mode::kStatic>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_EWiseAdd_StaticKernels");
BENCHMARK(BM_EWiseAdd<Mode::kJit>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_EWiseAdd_JitWarm");
BENCHMARK(BM_EWiseAdd<Mode::kInterp>)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_EWiseAdd_InterpRejectedDesign");

BENCHMARK_MAIN();
