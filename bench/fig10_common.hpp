// bench/fig10_common.hpp — shared machinery for the Fig. 10 reproduction:
// each algorithm is measured in the paper's three versions over Erdős–Rényi
// graphs with |E| = |V|^1.5:
//
//   pygb_python_loops — the DSL with outer loops in the host language, one
//                       dispatched operation per DSL statement, plus the
//                       calibrated CPython dispatch-overhead model;
//   pygb_cpp_algorithm — the DSL hands the whole loop to one compiled
//                        module (a single dispatch);
//   native_gbtl        — the templated C++ algorithm called directly.
//
// Expected shape (paper §VI): python-loops slowest at small |V| and
// converging to native as |V| grows; the whole-algorithm version between
// them; native fastest.
#pragma once

#include <benchmark/benchmark.h>

#include <map>

#include "algorithms/dsl_algorithms.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/pygb.hpp"

namespace fig10 {

/// Calibrated CPython per-dispatch cost (magic-method call + kwargs hash +
/// importlib lookup); see DESIGN.md substitution #1. Override by exporting
/// PYGB_INTERP_NS before launching the bench.
inline constexpr std::int64_t kCPythonDispatchNs = 1500;

/// Build (and memoize per process) the paper's workload graph.
inline const pygb::Matrix& paper_matrix(gbtl::IndexType n, bool weighted) {
  static std::map<std::pair<gbtl::IndexType, bool>, pygb::Matrix> cache;
  auto key = std::make_pair(n, weighted);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto el = pygb::gen::paper_graph(n, /*seed=*/42, /*symmetric=*/true,
                                     1.0, weighted ? 8.0 : 1.0);
    it = cache.emplace(key, pygb::Matrix::from_edge_list(el)).first;
  }
  return it->second;
}

/// RAII guard applying the CPython overhead model for one bench series.
class PyOverheadGuard {
 public:
  explicit PyOverheadGuard(bool enabled) {
    if (enabled && pygb::interp_overhead_ns() == 0) {
      pygb::set_interp_overhead_ns(kCPythonDispatchNs);
      set_ = true;
    }
  }
  ~PyOverheadGuard() {
    if (set_) pygb::set_interp_overhead_ns(0);
  }

 private:
  bool set_ = false;
};

inline void annotate(benchmark::State& state, std::size_t nnz) {
  state.counters["vertices"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["edges"] =
      benchmark::Counter(static_cast<double>(nnz));
}

}  // namespace fig10
