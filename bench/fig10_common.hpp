// bench/fig10_common.hpp — shared machinery for the Fig. 10 reproduction:
// each algorithm is measured in the paper's three versions over Erdős–Rényi
// graphs with |E| = |V|^1.5:
//
//   pygb_python_loops — the DSL with outer loops in the host language, one
//                       dispatched operation per DSL statement, plus the
//                       calibrated CPython dispatch-overhead model;
//   pygb_cpp_algorithm — the DSL hands the whole loop to one compiled
//                        module (a single dispatch);
//   native_gbtl        — the templated C++ algorithm called directly.
//
// Expected shape (paper §VI): python-loops slowest at small |V| and
// converging to native as |V| grows; the whole-algorithm version between
// them; native fastest.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "algorithms/dsl_algorithms.hpp"
#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/rmat.hpp"
#include "pygb/pygb.hpp"

namespace fig10 {

/// Calibrated CPython per-dispatch cost (magic-method call + kwargs hash +
/// importlib lookup); see DESIGN.md substitution #1. Override by exporting
/// PYGB_INTERP_NS before launching the bench.
inline constexpr std::int64_t kCPythonDispatchNs = 1500;

/// Build (and memoize per process) the paper's workload graph.
inline const pygb::Matrix& paper_matrix(gbtl::IndexType n, bool weighted) {
  static std::map<std::pair<gbtl::IndexType, bool>, pygb::Matrix> cache;
  auto key = std::make_pair(n, weighted);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto el = pygb::gen::paper_graph(n, /*seed=*/42, /*symmetric=*/true,
                                     1.0, weighted ? 8.0 : 1.0);
    it = cache.emplace(key, pygb::Matrix::from_edge_list(el)).first;
  }
  return it->second;
}

/// Build (and memoize per process) a skew-heavy R-MAT graph for the
/// worker-pool thread sweeps: 2^scale vertices, 16 * 2^scale directed
/// edges with a power-law degree distribution (the workload where the
/// dynamic schedule earns its keep).
inline const pygb::Matrix& rmat_matrix(unsigned scale) {
  static std::map<unsigned, pygb::Matrix> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    pygb::gen::RmatParams params;
    params.scale = scale;
    const auto el = pygb::gen::rmat(params);
    it = cache.emplace(scale, pygb::Matrix::from_edge_list(el)).first;
  }
  return it->second;
}

/// RAII guard pinning the worker-pool size for one bench series (restores
/// the previous count so sweeps don't leak state into other benchmarks).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(unsigned n)
      : saved_(gbtl::detail::num_threads()) {
    gbtl::detail::set_num_threads(n);
  }
  ~ThreadCountGuard() { gbtl::detail::set_num_threads(saved_); }

 private:
  unsigned saved_;
};

/// RAII guard pinning the kernel backend (docs/BACKENDS.md) for one bench
/// series. The native thread-sweep algorithms read the process default, so
/// this is how the sweeps flip between scalar and simd kernels.
class BackendGuard {
 public:
  explicit BackendGuard(bool simd) : saved_(gbtl::detail::default_backend()) {
    gbtl::detail::set_default_backend(simd
                                          ? gbtl::detail::Backend::kSimd
                                          : gbtl::detail::Backend::kScalar);
  }
  ~BackendGuard() { gbtl::detail::set_default_backend(saved_); }

 private:
  gbtl::detail::Backend saved_;
};

/// Per-series baselines for the thread sweeps, keyed by
/// "<bench>/<scale>/<backend>" (1-thread baseline of that backend) and
/// "<bench>/<scale>/<threads>t" (scalar baseline at that thread count).
/// Sweep axes are registered so 1-thread and scalar runs execute before
/// the runs compared against them.
inline std::map<std::string, double>& sweep_baselines() {
  static std::map<std::string, double> baselines;
  return baselines;
}

/// Annotate a thread-sweep run: thread count, graph shape, the speedup
/// over the SAME backend's 1-thread run (`speedup_vs_1t` — per-backend by
/// construction, so the two backends' scaling curves are separable in the
/// bench JSON), and for simd runs the speedup over the scalar backend at
/// the same thread count (`speedup_vs_scalar`).
inline void annotate_sweep(benchmark::State& state, const std::string& series,
                           unsigned scale, unsigned threads, std::size_t nnz,
                           double mean_seconds,
                           const char* backend = "scalar") {
  const std::string key =
      series + "/" + std::to_string(scale) + "/" + backend;
  const std::string xkey =
      series + "/" + std::to_string(scale) + "/" + std::to_string(threads) +
      "t";
  auto& baselines = sweep_baselines();
  if (threads == 1) baselines[key] = mean_seconds;
  const bool is_scalar = std::string(backend) == "scalar";
  if (is_scalar) baselines[xkey] = mean_seconds;
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
  state.counters["vertices"] =
      benchmark::Counter(static_cast<double>(1u << scale));
  state.counters["edges"] = benchmark::Counter(static_cast<double>(nnz));
  state.counters["simd"] = benchmark::Counter(is_scalar ? 0.0 : 1.0);
  const auto base = baselines.find(key);
  if (base != baselines.end() && mean_seconds > 0.0) {
    state.counters["speedup_vs_1t"] =
        benchmark::Counter(base->second / mean_seconds);
  }
  if (!is_scalar && mean_seconds > 0.0) {
    const auto xbase = baselines.find(xkey);
    if (xbase != baselines.end()) {
      state.counters["speedup_vs_scalar"] =
          benchmark::Counter(xbase->second / mean_seconds);
    }
  }
  state.SetLabel(backend);
}

/// RAII guard applying the CPython overhead model for one bench series.
class PyOverheadGuard {
 public:
  explicit PyOverheadGuard(bool enabled) {
    if (enabled && pygb::interp_overhead_ns() == 0) {
      pygb::set_interp_overhead_ns(kCPythonDispatchNs);
      set_ = true;
    }
  }
  ~PyOverheadGuard() {
    if (set_) pygb::set_interp_overhead_ns(0);
  }

 private:
  bool set_ = false;
};

inline void annotate(benchmark::State& state, std::size_t nnz) {
  state.counters["vertices"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["edges"] =
      benchmark::Counter(static_cast<double>(nnz));
}

}  // namespace fig10
