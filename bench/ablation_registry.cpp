// bench_ablation_registry — quantifies the §V argument: the ahead-of-time
// template-combination space per operation (the paper's "roughly 6
// trillion combinations ... for mxm alone") against the curated static
// table actually linked into this binary, plus the cost of key
// construction and registry lookup.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

void BM_KeyConstruction(benchmark::State& state) {
  OpRequest req;
  req.func = func::kMxM;
  req.c = DType::kFP64;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.b_transposed = true;
  req.mask = MaskKind::kMatrix;
  req.semiring = ArithmeticSemiring();
  for (auto _ : state) {
    benchmark::DoNotOptimize(req.key());
  }
}

void BM_RegistryLookupStaticHit(benchmark::State& state) {
  OpRequest req;
  req.func = func::kMxM;
  req.c = DType::kFP64;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.semiring = ArithmeticSemiring();
  auto& reg = Registry::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.get(req));
  }
}

void BM_KeyHash(benchmark::State& state) {
  OpRequest req;
  req.func = func::kMxM;
  req.c = DType::kFP64;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.semiring = ArithmeticSemiring();
  const std::string key = req.key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(key_hash(key));
  }
}

}  // namespace

BENCHMARK(BM_KeyConstruction);
BENCHMARK(BM_RegistryLookupStaticHit);
BENCHMARK(BM_KeyHash);

int main(int argc, char** argv) {
  std::printf(
      "== Section V combination space vs this binary's static table ==\n");
  const char* ops[] = {func::kMxM,        func::kMxV,
                       func::kVxM,        func::kEWiseAddMM,
                       func::kEWiseMultMM, func::kApplyM,
                       func::kReduceMS,   func::kAssignMM};
  for (const char* op : ops) {
    std::printf("  %-14s ahead-of-time combinations: %20" PRIu64 "\n", op,
                combination_space(op));
  }
  std::printf("  statically instantiated kernels in this binary: %zu\n",
              Registry::instance().static_kernel_count());
  std::printf(
      "  => precompiling the full space is infeasible; PyGB JIT-compiles "
      "on demand (Fig. 9).\n\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
