// bench_fig11_container — Fig. 11 reproduction: the container lifecycle
// (read a matrix from disk, construct it from an in-memory container,
// extract the data back out) for the "Python" path (per-token boxed lists,
// the paper's dominant cost) and the native C++ path, across sizes with
// |E| = |V|^1.5.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "generators/erdos_renyi.hpp"
#include "gbtl/gbtl.hpp"
#include "io/coo_text.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

/// One triplet file per size, written once per process.
const std::string& data_file(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, std::string> files;
  auto it = files.find(n);
  if (it == files.end()) {
    auto el = gen::paper_graph(n, /*seed=*/42, /*symmetric=*/true);
    io::Coo coo;
    coo.nrows = coo.ncols = n;
    for (const auto& e : el.edges) {
      coo.rows.push_back(e.src);
      coo.cols.push_back(e.dst);
      coo.vals.push_back(e.weight);
    }
    const auto path = std::filesystem::temp_directory_path() /
                      ("pygb_fig11_" + std::to_string(n) + ".txt");
    io::write_coo_text(path.string(), coo);
    it = files.emplace(n, path.string()).first;
  }
  return it->second;
}

// --- read from file -----------------------------------------------------------

void BM_Read_Python(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& path = data_file(n);
  for (auto _ : state) {
    // The CPython path: tokenize every line into individually boxed
    // values, then interpret them with per-element dynamic dispatch.
    auto lists = io::read_file_as_pylists(path);
    auto coo = io::pylists_to_coo(lists);
    benchmark::DoNotOptimize(coo.nnz());
  }
}

void BM_Read_Cpp(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& path = data_file(n);
  for (auto _ : state) {
    auto coo = io::read_coo_text(path);
    benchmark::DoNotOptimize(coo.nnz());
  }
}

void BM_Read_DirectLoad(benchmark::State& state) {
  // §VIII future work, implemented: the DSL loads straight from disk
  // through the native reader, skipping the boxed-list staging entirely.
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& path = data_file(n);
  for (auto _ : state) {
    Matrix m = Matrix::from_file(path);
    benchmark::DoNotOptimize(m.nvals());
  }
}

// --- construct from an in-memory container -------------------------------------

void BM_Construct_PyGB(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto coo = io::read_coo_text(data_file(n));
  for (auto _ : state) {
    Matrix m = Matrix::from_coo(coo);
    benchmark::DoNotOptimize(m.nvals());
  }
}

void BM_Construct_Native(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto coo = io::read_coo_text(data_file(n));
  for (auto _ : state) {
    auto m = io::to_matrix<double>(coo);
    benchmark::DoNotOptimize(m.nvals());
  }
}

// --- extract the data back out ---------------------------------------------------

void BM_Extract_PyGB(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix m = Matrix::from_coo(io::read_coo_text(data_file(n)));
  for (auto _ : state) {
    // Back to boxed per-element lists — Python extraction.
    auto lists = io::coo_to_pylists(m.to_coo());
    benchmark::DoNotOptimize(lists.size());
  }
}

void BM_Extract_Native(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto m = io::to_matrix<double>(io::read_coo_text(data_file(n)));
  gbtl::IndexArray is, js;
  std::vector<double> vs;
  for (auto _ : state) {
    m.extractTuples(is, js, vs);
    benchmark::DoNotOptimize(vs.size());
  }
}

// --- operate after construction (paper: comparable once built) -------------------

void BM_OperateAfterConstruction_PyGB(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix m = Matrix::from_coo(io::read_coo_text(data_file(n)));
  Vector u(n, DType::kFP64);
  u[pygb::Slice::all()] = 1.0;
  Vector w(n, DType::kFP64);
  for (auto _ : state) {
    w[None] = matmul(m, u);
    benchmark::DoNotOptimize(w.nvals());
  }
}

void BM_OperateAfterConstruction_Native(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto m = io::to_matrix<double>(io::read_coo_text(data_file(n)));
  gbtl::Vector<double> u(n);
  for (gbtl::IndexType i = 0; i < n; ++i) u.setElement(i, 1.0);
  gbtl::Vector<double> w(n);
  for (auto _ : state) {
    gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::ArithmeticSemiring<double>{}, m, u);
    benchmark::DoNotOptimize(w.nvals());
  }
}

}  // namespace

#define FIG11_SWEEP ->RangeMultiplier(2)->Range(128, 8192)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_Read_Python) FIG11_SWEEP;
BENCHMARK(BM_Read_Cpp) FIG11_SWEEP;
BENCHMARK(BM_Read_DirectLoad) FIG11_SWEEP;
BENCHMARK(BM_Construct_PyGB) FIG11_SWEEP;
BENCHMARK(BM_Construct_Native) FIG11_SWEEP;
BENCHMARK(BM_Extract_PyGB) FIG11_SWEEP;
BENCHMARK(BM_Extract_Native) FIG11_SWEEP;
BENCHMARK(BM_OperateAfterConstruction_PyGB) FIG11_SWEEP;
BENCHMARK(BM_OperateAfterConstruction_Native) FIG11_SWEEP;

BENCHMARK_MAIN();
