// bench_fig9_jit — the execution-model costs of Fig. 9: cold compilation
// (codegen + g++ + dlopen), disk-cache hit (dlopen only), memory-cache hit
// (hash lookup), static-table hit, and interp dispatch — plus the paper's
// claim that compile times amortize across runs, and the warm-service vs
// fork/exec compile-latency split the persistent `pygb_compiled` worker
// buys (docs/ROBUSTNESS.md).
#include "bench_json.hpp"
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "pygb/jit/cache.hpp"
#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/module_key.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

Matrix small_fixture() {
  return Matrix({{1, 2}, {3, 4}});
}

/// A dedicated throwaway cache dir so cold timings are honest.
std::string bench_cache_dir() {
  return (std::filesystem::temp_directory_path() /
          ("pygb_fig9_bench_" + std::to_string(::getpid())))
      .string();
}

void BM_ColdCompile(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    state.PauseTiming();
    reg.clear_disk_cache();  // force codegen + g++ + dlopen
    state.ResumeTiming();
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_DiskCacheHit(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  c[None] = matmul(a, a);  // populate the disk cache once
  for (auto _ : state) {
    state.PauseTiming();
    reg.clear_memory_cache();  // keep the .so, drop the handle
    state.ResumeTiming();
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_MemoryCacheHit(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  c[None] = matmul(a, a);  // warm
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_StaticTableHit(benchmark::State& state) {
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  reg.set_mode(Mode::kStatic);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.set_mode(saved_mode);
}

/// Save/clear/restore PYGB_COMPILED around the compile-path benchmarks so
/// each one measures the path its name promises, whatever the caller's
/// environment says.
class CompiledEnvScope {
 public:
  explicit CompiledEnvScope(const char* value) {
    const char* old = std::getenv("PYGB_COMPILED");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv("PYGB_COMPILED", value, 1);
    } else {
      ::unsetenv("PYGB_COMPILED");
    }
    CompileService::instance().reset();
  }
  ~CompiledEnvScope() {
    if (had_) {
      ::setenv("PYGB_COMPILED", saved_.c_str(), 1);
    } else {
      ::unsetenv("PYGB_COMPILED");
    }
    CompileService::instance().reset();  // also reaps any worker
  }

 private:
  bool had_ = false;
  std::string saved_;
};

/// One real generated kernel TU (ewise_add_vv on fp64, the same source
/// shape the registry compiles), written into `dir`.
std::string write_kernel_source(const std::filesystem::path& dir) {
  OpRequest req;
  req.func = func::kEWiseAddVV;
  req.c = DType::kFP64;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.binary_op = BinaryOp(BinaryOpName::kPlus);
  const std::filesystem::path path = dir / "bench_kernel.cpp";
  std::ofstream(path) << generate_source(req, cache_stamp());
  return path.string();
}

// The per-compile latency floor the persistent service exists to beat: one
// full compiler fork/exec (driver startup + glue.hpp parse) per module.
void BM_ForkExecCompile(benchmark::State& state) {
  if (!compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  CompiledEnvScope scope(nullptr);  // force the in-process runner
  namespace fs = std::filesystem;
  const fs::path dir = bench_cache_dir() + "_forkexec";
  fs::create_directories(dir);
  const std::string src = write_kernel_source(dir);
  const std::string out = (dir / "bench_kernel.so").string();
  for (auto _ : state) {
    const CompileResult r = compile_module(src, out);
    if (!r.ok) {
      state.SkipWithError(("compile failed: " + r.log).c_str());
      break;
    }
  }
  state.counters["serviced"] = 0;
  fs::remove_all(dir);
}

// The same TU through a WARM pygb_compiled worker: the spawn and the
// glue.hpp precompiled header are paid once (outside the timed loop), so
// real_ns here vs BM_ForkExecCompile is the amortized win the service
// delivers on every cold key after the first.
void BM_ServiceCompile(benchmark::State& state) {
  if (!compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  namespace fs = std::filesystem;
  if (!fs::exists(compiled_worker_path())) {
    state.SkipWithError("pygb_compiled worker not built");
    return;
  }
  CompiledEnvScope scope("on");
  auto& svc = CompileService::instance();
  const fs::path dir = bench_cache_dir() + "_service";
  fs::create_directories(dir);
  const std::string src = write_kernel_source(dir);
  const std::string out = (dir / "bench_kernel.so").string();
  // Warm outside the loop: the first request pays worker spawn + PCH build.
  const auto warm = svc.compile(src, out, /*timeout_ms=*/0);
  if (!warm.serviced || !warm.result.ok) {
    fs::remove_all(dir);
    state.SkipWithError(
        ("service warmup failed: " + warm.note + warm.result.log).c_str());
    return;
  }
  for (auto _ : state) {
    const auto attempt = svc.compile(src, out, /*timeout_ms=*/0);
    if (!attempt.serviced || !attempt.result.ok) {
      state.SkipWithError(("service compile failed: " + attempt.note +
                           attempt.result.log)
                              .c_str());
      break;
    }
  }
  const auto st = svc.state();
  state.counters["serviced"] = 1;
  state.counters["pch"] = st.pch ? 1 : 0;
  state.counters["service_restarts"] = st.restarts;
  fs::remove_all(dir);
}

void BM_InterpDispatch(benchmark::State& state) {
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  reg.set_mode(Mode::kInterp);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.set_mode(saved_mode);
}

}  // namespace

BENCHMARK(BM_ColdCompile)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ForkExecCompile)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_ServiceCompile)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_DiskCacheHit)->Unit(benchmark::kMicrosecond)->Iterations(20);
BENCHMARK(BM_MemoryCacheHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StaticTableHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpDispatch)->Unit(benchmark::kMicrosecond);

PYGB_BENCH_JSON_MAIN("fig9_jit");
