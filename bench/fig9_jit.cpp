// bench_fig9_jit — the execution-model costs of Fig. 9: cold compilation
// (codegen + g++ + dlopen), disk-cache hit (dlopen only), memory-cache hit
// (hash lookup), static-table hit, and interp dispatch — plus the paper's
// claim that compile times amortize across runs.
#include "bench_json.hpp"
#include <benchmark/benchmark.h>

#include <filesystem>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

Matrix small_fixture() {
  return Matrix({{1, 2}, {3, 4}});
}

/// A dedicated throwaway cache dir so cold timings are honest.
std::string bench_cache_dir() {
  return (std::filesystem::temp_directory_path() /
          ("pygb_fig9_bench_" + std::to_string(::getpid())))
      .string();
}

void BM_ColdCompile(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    state.PauseTiming();
    reg.clear_disk_cache();  // force codegen + g++ + dlopen
    state.ResumeTiming();
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_DiskCacheHit(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  c[None] = matmul(a, a);  // populate the disk cache once
  for (auto _ : state) {
    state.PauseTiming();
    reg.clear_memory_cache();  // keep the .so, drop the handle
    state.ResumeTiming();
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_MemoryCacheHit(benchmark::State& state) {
  if (!Registry::instance().compiler_available()) {
    state.SkipWithError("no C++ compiler available");
    return;
  }
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  reg.set_cache_dir(bench_cache_dir());
  reg.set_mode(Mode::kJit);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  c[None] = matmul(a, a);  // warm
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);
}

void BM_StaticTableHit(benchmark::State& state) {
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  reg.set_mode(Mode::kStatic);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.set_mode(saved_mode);
}

void BM_InterpDispatch(benchmark::State& state) {
  auto& reg = Registry::instance();
  const auto saved_mode = reg.mode();
  reg.set_mode(Mode::kInterp);
  Matrix a = small_fixture();
  Matrix c(2, 2);
  for (auto _ : state) {
    c[None] = matmul(a, a);
  }
  reg.set_mode(saved_mode);
}

}  // namespace

BENCHMARK(BM_ColdCompile)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_DiskCacheHit)->Unit(benchmark::kMicrosecond)->Iterations(20);
BENCHMARK(BM_MemoryCacheHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StaticTableHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpDispatch)->Unit(benchmark::kMicrosecond);

PYGB_BENCH_JSON_MAIN("fig9_jit");
