// bench_fig10_bfs — Fig. 10, BFS panel: run time vs |V| for the three
// implementation tiers on ER graphs with |E| = |V|^1.5, plus the
// thread × backend sweep on R-MAT graphs (docs/BACKENDS.md).
#include "fig10_common.hpp"

#include "bench_json.hpp"

#include <chrono>

#include "algorithms/bfs.hpp"

namespace {

using namespace pygb;  // NOLINT

void BM_BFS_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector frontier(n, DType::kBool);
    frontier.set(0, Scalar(true));
    Vector levels(n, DType::kInt64);
    benchmark::DoNotOptimize(algo::dsl_bfs(graph, frontier, levels));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_BFS_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  Vector frontier(n, DType::kBool);
  frontier.set(0, Scalar(true));
  for (auto _ : state) {
    Vector levels(n, DType::kInt64);
    benchmark::DoNotOptimize(algo::whole_bfs(graph, frontier, levels));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_BFS_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& graph = fig10::paper_matrix(n, false).typed<double>();
  for (auto _ : state) {
    gbtl::Vector<std::int64_t> levels(n);
    benchmark::DoNotOptimize(pygb::algo::bfs_from(graph, 0, levels));
  }
  fig10::annotate(state, graph.nvals());
}

/// Worker-pool thread sweep on a skewed R-MAT graph: range(0) = scale,
/// range(1) = GBTL_NUM_THREADS, range(2) = backend (0 scalar, 1 simd).
/// BFS is where the simd backend's direction-optimized mxv earns its keep:
/// the dense middle plies pull over the cached transpose instead of
/// scattering the whole frontier.
void BM_BFS_ThreadSweep(benchmark::State& state) {
  const auto scale = static_cast<unsigned>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const bool simd = state.range(2) != 0;
  const auto& graph = fig10::rmat_matrix(scale).typed<double>();
  fig10::ThreadCountGuard guard(threads);
  fig10::BackendGuard backend(simd);
  double total_seconds = 0.0;
  std::int64_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    gbtl::Vector<std::int64_t> levels(graph.nrows());
    benchmark::DoNotOptimize(pygb::algo::bfs_from(graph, 0, levels));
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++iters;
  }
  fig10::annotate_sweep(state, "bfs", scale, threads, graph.nvals(),
                        iters > 0 ? total_seconds / iters : 0.0,
                        simd ? "simd" : "scalar");
}

}  // namespace

BENCHMARK(BM_BFS_ThreadSweep)
    ->ArgsProduct({{12, 13}, {1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BFS_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BFS_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BFS_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);

PYGB_BENCH_JSON_MAIN("fig10_bfs");
