// bench_fig10_bfs — Fig. 10, BFS panel: run time vs |V| for the three
// implementation tiers on ER graphs with |E| = |V|^1.5.
#include "fig10_common.hpp"

#include "bench_json.hpp"

#include "algorithms/bfs.hpp"

namespace {

using namespace pygb;  // NOLINT

void BM_BFS_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    Vector frontier(n, DType::kBool);
    frontier.set(0, Scalar(true));
    Vector levels(n, DType::kInt64);
    benchmark::DoNotOptimize(algo::dsl_bfs(graph, frontier, levels));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_BFS_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& graph = fig10::paper_matrix(n, false);
  fig10::PyOverheadGuard overhead(true);
  Vector frontier(n, DType::kBool);
  frontier.set(0, Scalar(true));
  for (auto _ : state) {
    Vector levels(n, DType::kInt64);
    benchmark::DoNotOptimize(algo::whole_bfs(graph, frontier, levels));
  }
  fig10::annotate(state, graph.nvals());
}

void BM_BFS_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& graph = fig10::paper_matrix(n, false).typed<double>();
  for (auto _ : state) {
    gbtl::Vector<std::int64_t> levels(n);
    benchmark::DoNotOptimize(pygb::algo::bfs_from(graph, 0, levels));
  }
  fig10::annotate(state, graph.nvals());
}

}  // namespace

BENCHMARK(BM_BFS_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BFS_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BFS_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 8192)
    ->Unit(benchmark::kMillisecond);

PYGB_BENCH_JSON_MAIN("fig10_bfs");
