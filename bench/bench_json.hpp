// bench/bench_json.hpp — machine-readable bench artifacts.
//
// PYGB_BENCH_JSON_MAIN("name") replaces BENCHMARK_MAIN() for the figure
// benchmarks: runs exactly the same console benchmark session, and on the
// way out writes BENCH_<name>.json — per-benchmark wall times (ns/iter)
// with user counters (threads, speedup_vs_1t, ...) plus the full
// pygb.metrics snapshot — so CI can diff runs with
// scripts/bench_compare.py instead of scraping console output.
//
// Destination: $PYGB_BENCH_JSON_DIR/BENCH_<name>.json (cwd by default).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pygb/obs/export.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::benchjson {

struct RunRecord {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns = 0.0;  ///< per iteration
  double cpu_ns = 0.0;   ///< per iteration
  std::vector<std::pair<std::string, double>> counters;
};

/// Console reporter that also keeps every per-iteration run for the JSON
/// artifact (aggregates and errored runs are skipped).
class CollectingReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      RunRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rec.real_ns = run.real_accumulated_time * 1e9 / iters;
      rec.cpu_ns = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [cname, counter] : run.counters) {
        rec.counters.emplace_back(cname, counter.value);
      }
      records_.push_back(std::move(rec));
    }
    ::benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<RunRecord>& records() const { return records_; }

 private:
  std::vector<RunRecord> records_;
};

inline void append_double(std::string& out, double v) {
  char buf[40];
  // JSON has no NaN/Inf literals.
  if (v != v || v > 1.7e308 || v < -1.7e308) {
    std::snprintf(buf, sizeof buf, "null");
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  out += buf;
}

inline std::string render(const char* bench_name,
                          const std::vector<RunRecord>& records) {
  std::string out = "{\"schema\":\"pygb.bench\",\"schema_version\":1,";
  out += "\"bench\":";
  obs::detail::append_json_string(out, bench_name);
  out += ",\"benchmarks\":[";
  bool first = true;
  for (const RunRecord& rec : records) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    obs::detail::append_json_string(out, rec.name);
    out += ",\"iterations\":" + std::to_string(rec.iterations);
    out += ",\"real_ns\":";
    append_double(out, rec.real_ns);
    out += ",\"cpu_ns\":";
    append_double(out, rec.cpu_ns);
    out += ",\"counters\":{";
    bool cfirst = true;
    for (const auto& [cname, cvalue] : rec.counters) {
      if (!cfirst) out += ',';
      cfirst = false;
      obs::detail::append_json_string(out, cname);
      out += ':';
      append_double(out, cvalue);
    }
    out += "}}";
  }
  out += "],\"metrics\":" + obs::metrics_json() + "}\n";
  return out;
}

inline int write_artifact(const char* bench_name,
                          const std::vector<RunRecord>& records) {
  const char* dir = std::getenv("PYGB_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/"
                         : std::string();
  path += std::string("BENCH_") + bench_name + ".json";
  std::string error;
  if (!obs::write_file_atomic(path, render(bench_name, records), &error)) {
    std::fprintf(stderr, "bench: failed to write %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench: wrote %s (%zu benchmarks)\n", path.c_str(),
               records.size());
  return 0;
}

}  // namespace pygb::benchjson

#define PYGB_BENCH_JSON_MAIN(bench_name)                                \
  int main(int argc, char** argv) {                                     \
    char arg0_default[] = "benchmark";                                  \
    char* args_default = arg0_default;                                  \
    if (!argv) {                                                        \
      argc = 1;                                                         \
      argv = &args_default;                                             \
    }                                                                   \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::pygb::obs::set_metrics_enabled(true);                             \
    ::pygb::benchjson::CollectingReporter reporter;                     \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    const int rc =                                                      \
        ::pygb::benchjson::write_artifact(bench_name, reporter.records()); \
    ::benchmark::Shutdown();                                            \
    return rc;                                                          \
  }                                                                     \
  int main(int, char**)
