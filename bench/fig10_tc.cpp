// bench_fig10_tc — Fig. 10, triangle-counting panel: a straight-line
// sequence of operations with no outer loop, so the DSL tier pays only a
// constant handful of dispatches (the penalty vanishes fastest here).
#include "fig10_common.hpp"

#include "algorithms/triangle_count.hpp"

namespace {

using namespace pygb;  // NOLINT

const Matrix& lower_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Matrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto [lower, upper] = split_triangles(fig10::paper_matrix(n, false));
    it = cache.emplace(n, lower).first;
  }
  return it->second;
}

void BM_TC_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& lower = lower_of(n);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::dsl_triangle_count(lower));
  }
  fig10::annotate(state, lower.nvals());
}

void BM_TC_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& lower = lower_of(n);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::whole_triangle_count(lower));
  }
  fig10::annotate(state, lower.nvals());
}

void BM_TC_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& lower = lower_of(n).typed<double>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pygb::algo::triangle_count<std::int64_t>(lower));
  }
  fig10::annotate(state, lower.nvals());
}

}  // namespace

BENCHMARK(BM_TC_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TC_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TC_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
