// bench_fig10_tc — Fig. 10, triangle-counting panel: a straight-line
// sequence of operations with no outer loop, so the DSL tier pays only a
// constant handful of dispatches (the penalty vanishes fastest here).
#include "fig10_common.hpp"

#include "bench_json.hpp"

#include <chrono>

#include "algorithms/triangle_count.hpp"

namespace {

using namespace pygb;  // NOLINT

const Matrix& lower_of(gbtl::IndexType n) {
  static std::map<gbtl::IndexType, Matrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto [lower, upper] = split_triangles(fig10::paper_matrix(n, false));
    it = cache.emplace(n, lower).first;
  }
  return it->second;
}

void BM_TC_PyGB_PythonLoops(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& lower = lower_of(n);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::dsl_triangle_count(lower));
  }
  fig10::annotate(state, lower.nvals());
}

void BM_TC_PyGB_CppAlgorithm(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const Matrix& lower = lower_of(n);
  fig10::PyOverheadGuard overhead(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::whole_triangle_count(lower));
  }
  fig10::annotate(state, lower.nvals());
}

void BM_TC_NativeGBTL(benchmark::State& state) {
  const auto n = static_cast<gbtl::IndexType>(state.range(0));
  const auto& lower = lower_of(n).typed<double>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pygb::algo::triangle_count<std::int64_t>(lower));
  }
  fig10::annotate(state, lower.nvals());
}

/// Lower triangle of a symmetrized R-MAT graph (memoized per scale).
const Matrix& rmat_lower_of(unsigned scale) {
  static std::map<unsigned, Matrix> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    const auto& directed = fig10::rmat_matrix(scale).typed<double>();
    gbtl::Matrix<double> sym(directed.nrows(), directed.ncols());
    // Max keeps duplicate-direction edges at weight 1.0.
    gbtl::eWiseAdd(sym, gbtl::NoMask{}, gbtl::NoAccumulate{},
                   gbtl::Max<double>{}, directed, gbtl::transpose(directed));
    auto [lower, upper] = split_triangles(Matrix::adopt(std::move(sym)));
    it = cache.emplace(scale, lower).first;
  }
  return it->second;
}

/// Worker-pool thread sweep on the masked-dot triangle-count kernel:
/// range(0) = scale, range(1) = GBTL_NUM_THREADS. The power-law degree
/// distribution makes this the showcase for GBTL_SCHEDULE=dynamic.
void BM_TC_ThreadSweep(benchmark::State& state) {
  const auto scale = static_cast<unsigned>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto& lower = rmat_lower_of(scale).typed<double>();
  fig10::ThreadCountGuard guard(threads);
  double total_seconds = 0.0;
  std::int64_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        pygb::algo::triangle_count<std::int64_t>(lower));
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++iters;
  }
  fig10::annotate_sweep(state, "tc", scale, threads, lower.nvals(),
                        iters > 0 ? total_seconds / iters : 0.0);
}

}  // namespace

BENCHMARK(BM_TC_ThreadSweep)
    ->ArgsProduct({{11, 12}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TC_PyGB_PythonLoops)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TC_PyGB_CppAlgorithm)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TC_NativeGBTL)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);

PYGB_BENCH_JSON_MAIN("fig10_tc");
